// Package cluster provides the worker-node substrate the simulator
// schedules onto: per-node memory and disk stores driven by a cache
// policy, and the cluster configurations of the paper's Table 4.
package cluster

import "fmt"

// MB and related constants express byte sizes readably.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// Config describes a homogeneous cluster (the paper's testbeds are
// homogeneous VMs). Bandwidths are bytes per second of simulated time.
type Config struct {
	Name         string
	Nodes        int
	CoresPerNode int
	// CacheBytes is the storage-pool capacity per node — the Spark
	// storage memory the experiments vary via spark.memory.fraction.
	CacheBytes int64
	// DiskBytesPerSec is the local-disk bandwidth per node, shared by
	// HDFS reads, shuffle I/O, spills and prefetches.
	DiskBytesPerSec int64
	// NetBytesPerSec is the per-node NIC bandwidth used by shuffle
	// remote reads.
	NetBytesPerSec int64
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster %q: need at least one node, got %d", c.Name, c.Nodes)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("cluster %q: need at least one core per node, got %d", c.Name, c.CoresPerNode)
	case c.CacheBytes <= 0:
		return fmt.Errorf("cluster %q: cache capacity must be positive, got %d", c.Name, c.CacheBytes)
	case c.DiskBytesPerSec <= 0:
		return fmt.Errorf("cluster %q: disk bandwidth must be positive, got %d", c.Name, c.DiskBytesPerSec)
	case c.NetBytesPerSec <= 0:
		return fmt.Errorf("cluster %q: network bandwidth must be positive, got %d", c.Name, c.NetBytesPerSec)
	}
	return nil
}

// WithCache returns a copy of the config with the per-node cache
// capacity replaced — the experiments' cache-size sweeps.
func (c Config) WithCache(bytes int64) Config {
	c.CacheBytes = bytes
	return c
}

// TotalCache returns the cluster-wide cache capacity.
func (c Config) TotalCache() int64 { return c.CacheBytes * int64(c.Nodes) }

// Main returns the paper's main 25-node testbed (Table 4): 4 vCPUs and
// a 500 Mbps network per node. The default per-node cache models
// Spark's storage pool out of 8 GB VMs; experiments override it.
func Main() Config {
	return Config{
		Name:            "Main",
		Nodes:           25,
		CoresPerNode:    4,
		CacheBytes:      1 * GB,
		DiskBytesPerSec: 35 * MB,      // commodity virtualized disk
		NetBytesPerSec:  500 * MB / 8, // 500 Mbps
	}
}

// LRC returns the 20-node Amazon EC2 m4.large equivalent used for the
// LRC comparison: 2 vCPUs, 450 Mbps.
func LRC() Config {
	return Config{
		Name:            "LRC",
		Nodes:           20,
		CoresPerNode:    2,
		CacheBytes:      1 * GB,
		DiskBytesPerSec: 30 * MB,
		NetBytesPerSec:  450 * MB / 8,
	}
}

// MemTune returns the 6-node System G equivalent used for the MemTune
// comparison: 8 vCPUs, 1 Gbps.
func MemTune() Config {
	return Config{
		Name:            "MemTune",
		Nodes:           6,
		CoresPerNode:    8,
		CacheBytes:      1 * GB,
		DiskBytesPerSec: 40 * MB,
		NetBytesPerSec:  1000 * MB / 8,
	}
}
