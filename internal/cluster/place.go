package cluster

import "mrdspark/internal/block"

// HomeNode is the cluster's single block-placement rule: a block's
// locality-preferred node is its partition index modulo the node count.
// The simulator's stores, the fault ledger sweeps, and the online
// advisor's model cluster must all agree on placement — a block "lost
// with its node" is exactly a block homed there — so every call site
// routes through this one function. Change placement here and nowhere
// else.
func HomeNode(id block.ID, nodes int) int {
	return id.Partition % nodes
}

// HomePartition is HomeNode for call sites that know only the partition
// index (plan-time placement of blocks not yet materialized).
func HomePartition(partition, nodes int) int {
	return partition % nodes
}
