package cluster

import (
	"sync"
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/policy"
)

// TestMemoryStoreConcurrentHammer drives one MemoryStore (and its
// DiskStore sibling) from many goroutines at once — the access pattern
// the execution engine's worker executors now produce: concurrent
// residency probes and reads racing with inserts, removals, guarded
// prefetch arrivals, and a node-kill Clear. Run under -race (CI always
// does) this pins the store-level locking; without the MemoryStore
// mutex it fails immediately on the blocks-map races.
func TestMemoryStoreConcurrentHammer(t *testing.T) {
	const (
		goroutines = 8
		opsPerG    = 4000
		nBlocks    = 64
	)
	mem := NewMemoryStore(16*MB, policy.NewLRU().NewNodePolicy(0))
	disk := NewDiskStore()

	info := func(i int) block.Info {
		return block.Info{
			ID:    block.ID{RDD: i % 8, Partition: i / 8},
			Size:  1 * MB,
			Level: block.MemoryAndDisk,
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// splitmix64 stream: deterministic per goroutine, no locks.
			x := uint64(g)*0x9E3779B97F4A7C15 + 1
			next := func() uint64 {
				x += 0x9E3779B97F4A7C15
				z := x
				z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
				z = (z ^ (z >> 27)) * 0x94D049BB133111EB
				return z ^ (z >> 31)
			}
			for i := 0; i < opsPerG; i++ {
				in := info(int(next() % nBlocks))
				switch next() % 10 {
				case 0, 1, 2:
					mem.Get(in.ID)
				case 3, 4:
					if evicted, ok := mem.Put(in); ok {
						for _, v := range evicted {
							disk.Put(v.ID, v.Size)
						}
					}
				case 5:
					mem.PutGuarded(in, func(block.ID) bool { return next()%2 == 0 })
				case 6:
					mem.Contains(in.ID)
					mem.Free()
					mem.Len()
				case 7:
					mem.Remove(in.ID)
					disk.Remove(in.ID)
				case 8:
					mem.SetReplicaCount(in.ID, int(next()%3))
					mem.ReplicaCount(in.ID)
					mem.Blocks()
				default:
					if next()%64 == 0 {
						mem.Clear() // the node-kill wipe
					} else {
						disk.Has(in.ID)
						mem.Used()
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The store must still be internally consistent after the storm:
	// used bytes equal the sum of resident block sizes.
	var sum int64
	for _, id := range mem.Blocks() {
		if !mem.Contains(id) {
			t.Fatalf("Blocks() returned non-resident %v", id)
		}
		sum += 1 * MB
	}
	if got := mem.Used(); got != sum {
		t.Fatalf("used bytes %d, but resident blocks sum to %d", got, sum)
	}
	if mem.Used() > mem.Capacity() {
		t.Fatalf("used %d exceeds capacity %d", mem.Used(), mem.Capacity())
	}
}
