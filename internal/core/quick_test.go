package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mrdspark/internal/block"
	"mrdspark/internal/dag"
	"mrdspark/internal/refdist"
)

// randomProfileGraph builds a random application whose cached RDDs
// have varied reference schedules, for property-testing the monitor.
func randomProfileGraph(rng *rand.Rand) *dag.Graph {
	g := dag.New()
	src := g.Source("in", 2, 1<<10)
	var cached []*dag.RDD
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		cached = append(cached, src.Map("c", dag.WithCost(10)).Persist(block.MemoryAndDisk))
	}
	// Creation job touches everything.
	all := cached[0]
	for _, r := range cached[1:] {
		all = all.ZipPartitions("z", r)
	}
	g.Count(all)
	// Random read jobs.
	jobs := 3 + rng.Intn(10)
	for j := 0; j < jobs; j++ {
		r := cached[rng.Intn(len(cached))]
		g.Count(r.Map("use", dag.WithCost(10)))
	}
	return g
}

// TestQuickVictimHasMaximalDistance is the paper's core invariant
// (Definition 1 + §4.1): the CacheMonitor's victim always carries the
// greatest reference distance among evictable resident blocks,
// infinite counting as greatest. Verified against brute force over
// random applications, stages and resident sets.
func TestQuickVictimHasMaximalDistance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomProfileGraph(rng)
		m := NewFull(g)
		mon := m.NewNodePolicy(0).(*CacheMonitor)

		var resident []block.ID
		for _, r := range g.CachedRDDs() {
			if rng.Intn(2) == 0 {
				id := r.Block(rng.Intn(r.NumPartitions))
				mon.OnAdd(id)
				resident = append(resident, id)
			}
		}
		if len(resident) == 0 {
			return true
		}
		stages := g.ExecutedStages()
		st := stages[rng.Intn(len(stages))]
		m.OnStageStart(st.ID, st.FirstJob.ID)

		victim, ok := mon.Victim(func(block.ID) bool { return true })
		if !ok {
			return false
		}
		vd := m.distance(victim.RDD)
		for _, id := range resident {
			d := m.distance(id.RDD)
			// Any resident block strictly "greater" than the victim
			// (infinite beats finite; larger finite beats smaller)
			// disproves maximality.
			if refdist.IsInfinite(d) && !refdist.IsInfinite(vd) {
				return false
			}
			if !refdist.IsInfinite(d) && !refdist.IsInfinite(vd) && d > vd {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickTableMatchesProfile: the MRD_Table always equals the
// profile's consumed distances at the current stage.
func TestQuickTableMatchesProfile(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomProfileGraph(rng)
		m := NewFull(g)
		p := refdist.FromGraph(g)
		for _, st := range g.ExecutedStages() {
			m.OnStageStart(st.ID, st.FirstJob.ID)
			for _, id := range p.RDDs() {
				want := p.StageDistanceConsumed(id, st.ID)
				got := m.distance(id)
				if refdist.IsInfinite(want) != refdist.IsInfinite(got) {
					return false
				}
				if !refdist.IsInfinite(want) && got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
