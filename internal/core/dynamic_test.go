package core

import (
	"testing"
)

func TestControllerBacksOffOnWaste(t *testing.T) {
	c := newThresholdController(0.25)
	c.update(1, 20) // 95% waste
	if c.threshold <= 0.25 {
		t.Errorf("threshold = %v, want raised above 0.25", c.threshold)
	}
	if c.horizon >= dynInitialHorizon {
		t.Errorf("horizon = %v, want narrowed below %d", c.horizon, dynInitialHorizon)
	}
	if c.Adjustments != 1 {
		t.Errorf("adjustments = %d", c.Adjustments)
	}
}

func TestControllerGrowsOnAccuracy(t *testing.T) {
	c := newThresholdController(0.25)
	c.update(100, 2) // ~2% waste
	if c.threshold >= 0.25 {
		t.Errorf("threshold = %v, want lowered", c.threshold)
	}
	if c.horizon <= dynInitialHorizon {
		t.Errorf("horizon = %v, want widened", c.horizon)
	}
}

func TestControllerIgnoresSmallSamples(t *testing.T) {
	c := newThresholdController(0.25)
	c.update(1, 2) // 3 outcomes < dynMinSample
	if c.Adjustments != 0 || c.threshold != 0.25 {
		t.Errorf("adjusted on a tiny sample: %+v", c)
	}
	// The unconsumed outcomes still count toward the next window.
	c.update(2, 8) // cumulative: 10 outcomes, 80% waste
	if c.Adjustments != 1 {
		t.Errorf("did not adjust once the sample filled: %+v", c)
	}
}

func TestControllerClamps(t *testing.T) {
	c := newThresholdController(0.25)
	// Hammer waste until both controls pin at their bounds.
	for i := 1; i <= 50; i++ {
		c.update(int64(i), int64(i*100))
	}
	if c.threshold != dynMaxThreshold {
		t.Errorf("threshold = %v, want clamped at %v", c.threshold, dynMaxThreshold)
	}
	if c.horizon != dynMinHorizon {
		t.Errorf("horizon = %v, want clamped at %v", c.horizon, dynMinHorizon)
	}
	// And back down on sustained accuracy.
	base := int64(10000)
	for i := int64(1); i <= 200; i++ {
		c.update(base+i*100, base/100)
	}
	if c.threshold != dynMinThreshold {
		t.Errorf("threshold = %v, want clamped at %v", c.threshold, dynMinThreshold)
	}
	if c.horizon != dynMaxHorizon {
		t.Errorf("horizon = %v, want clamped at %v", c.horizon, dynMaxHorizon)
	}
}

func TestControllerSteadyStateUntouched(t *testing.T) {
	c := newThresholdController(0.25)
	c.update(80, 20) // 20% waste: between the bands
	if c.Adjustments != 0 {
		t.Errorf("adjusted inside the dead band: %+v", c)
	}
}

func TestManagerDynamicThresholdWiring(t *testing.T) {
	g, near, _, _ := testGraph(t)
	m := NewManager(g, NewRecurringProfiler(profileOf(g)), Options{DynamicThreshold: true})
	ops := newFakeOps(1, 1<<30)
	m.Attach(ops)
	ops.onDisk[near.Block(0)] = true

	// Report heavy waste, then advance a stage: the threshold rises.
	ops.used, ops.wasted = 1, 50
	m.OnStageStart(2, 2)
	v, adj := m.Threshold()
	if adj == 0 || v <= 0.25 {
		t.Errorf("threshold not adapted: v=%v adj=%d", v, adj)
	}
}

func TestDynamicHorizonGatesCandidates(t *testing.T) {
	g, near, far, _ := testGraph(t)
	m := NewManager(g, NewRecurringProfiler(profileOf(g)), Options{DynamicThreshold: true})
	ops := newFakeOps(1, 1<<30)
	m.Attach(ops)
	ops.onDisk[near.Block(0)] = true
	ops.onDisk[far.Block(0)] = true

	// Crush the horizon to 1 with sustained waste reports (each stage
	// must bring fresh outcomes for the controller to act on).
	for i := int64(1); i <= 10; i++ {
		ops.used, ops.wasted = i, i*1000
		m.OnStageStart(0, 0)
	}
	ops.prefetched = nil
	m.OnStageStart(2, 2) // near d=1, far d=3
	for _, p := range ops.prefetched {
		if p.ID.RDD == far.ID {
			t.Errorf("far block prefetched beyond the horizon: %v", ops.prefetched)
		}
	}
	if len(ops.prefetched) == 0 {
		t.Error("imminent block not prefetched despite horizon 1")
	}
}
