package core

import (
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/dag"
	"mrdspark/internal/refdist"
)

func all(block.ID) bool { return true }

func TestMonitorEvictsGreatestDistance(t *testing.T) {
	g, near, far, dead := testGraph(t)
	m := NewFull(g)
	mon := m.NewNodePolicy(0).(*CacheMonitor)
	mon.OnAdd(near.Block(0))
	mon.OnAdd(far.Block(0))
	mon.OnAdd(dead.Block(0))
	m.OnStageStart(1, 1)

	v, ok := mon.Victim(all)
	if !ok || v != dead.Block(0) {
		t.Errorf("victim = %v, want infinite-distance dead", v)
	}
	mon.OnRemove(dead.Block(0))
	v, _ = mon.Victim(all)
	if v != far.Block(0) {
		t.Errorf("victim = %v, want greatest finite distance far", v)
	}
	mon.OnRemove(far.Block(0))
	v, _ = mon.Victim(all)
	if v != near.Block(0) {
		t.Errorf("victim = %v, want near last", v)
	}
}

func TestMonitorDistanceTiesBreakLRU(t *testing.T) {
	g, near, _, _ := testGraph(t)
	m := NewFull(g)
	mon := m.NewNodePolicy(0).(*CacheMonitor)
	mon.OnAdd(near.Block(0))
	mon.OnAdd(near.Block(1))
	mon.OnAccess(near.Block(0)) // block 1 is least recent
	m.OnStageStart(1, 1)
	v, _ := mon.Victim(all)
	if v != near.Block(1) {
		t.Errorf("tie victim = %v, want least-recently-used", v)
	}
}

func TestMonitorLRUFallbackWhenEvictionDisabled(t *testing.T) {
	g, near, _, dead := testGraph(t)
	m := NewManager(g, NewRecurringProfiler(refdist.FromGraph(g)), Options{DisableEviction: true})
	mon := m.NewNodePolicy(0).(*CacheMonitor)
	mon.OnAdd(dead.Block(0))
	mon.OnAdd(near.Block(0))
	mon.OnAccess(dead.Block(0)) // near becomes LRU despite dead being garbage
	m.OnStageStart(1, 1)
	v, _ := mon.Victim(all)
	if v != near.Block(0) {
		t.Errorf("prefetch-only victim = %v, want plain LRU choice", v)
	}
}

func TestMonitorVictimRespectsFilter(t *testing.T) {
	g, near, far, _ := testGraph(t)
	m := NewFull(g)
	mon := m.NewNodePolicy(0).(*CacheMonitor)
	mon.OnAdd(near.Block(0))
	mon.OnAdd(far.Block(0))
	m.OnStageStart(1, 1)
	v, ok := mon.Victim(func(id block.ID) bool { return id != far.Block(0) })
	if !ok || v != near.Block(0) {
		t.Errorf("filtered victim = %v", v)
	}
	if _, ok := mon.Victim(func(block.ID) bool { return false }); ok {
		t.Error("victim with nothing evictable")
	}
}

func TestAllowPrefetchEviction(t *testing.T) {
	g, near, far, dead := testGraph(t)
	m := NewFull(g)
	mon := m.NewNodePolicy(0).(*CacheMonitor)
	m.OnStageStart(1, 1) // near d=0, far d=4, dead infinite

	nearInfo := near.BlockInfo(0)
	farInfo := far.BlockInfo(0)
	if !mon.AllowPrefetchEviction(nearInfo, dead.Block(0)) {
		t.Error("must allow evicting an infinite-distance victim")
	}
	if !mon.AllowPrefetchEviction(nearInfo, far.Block(0)) {
		t.Error("must allow evicting a strictly-farther victim")
	}
	if mon.AllowPrefetchEviction(farInfo, near.Block(0)) {
		t.Error("must not evict a nearer victim for a farther block")
	}
	if mon.AllowPrefetchEviction(nearInfo, near.Block(1)) {
		t.Error("must not evict an equal-distance victim (churn)")
	}
	deadInfo := dead.BlockInfo(0)
	if mon.AllowPrefetchEviction(deadInfo, near.Block(0)) {
		t.Error("must never evict live data for a dead incoming block")
	}
}

func TestMonitorDistanceAccessor(t *testing.T) {
	g, near, _, _ := testGraph(t)
	m := NewFull(g)
	mon := m.NewNodePolicy(0).(*CacheMonitor)
	m.OnStageStart(2, 2)
	if d := mon.Distance(near.Block(3)); d != 1 {
		t.Errorf("Distance = %d, want 1 (next read at stage 3)", d)
	}
}

func TestNodeFailureReissuesTable(t *testing.T) {
	g, near, _, _ := testGraph(t)
	m := NewFull(g)
	mon := m.NewNodePolicy(3).(*CacheMonitor)
	mon.OnAdd(near.Block(0))
	m.OnNodeFailure(3)
	if m.Stats().TableReissues != 1 {
		t.Errorf("reissues = %d", m.Stats().TableReissues)
	}
	if _, ok := mon.Victim(all); ok {
		t.Error("monitor still tracks blocks after reset")
	}
	// The replacement monitor still reads valid distances.
	m.OnStageStart(2, 2)
	if d := mon.Distance(near.Block(0)); d != 1 {
		t.Errorf("post-failure distance = %d", d)
	}
}

func TestTieBreakStrategies(t *testing.T) {
	// Two RDDs with equal distances but different block sizes: "big"
	// and "small" are both read at stage 3.
	g := dag.New()
	src := g.Source("in", 2, 1<<20)
	big := src.Map("big", dag.WithPartSize(8<<20)).Persist(block.MemoryAndDisk)
	small := src.Map("small", dag.WithPartSize(1<<20)).Persist(block.MemoryAndDisk)
	g.Count(big.ZipPartitions("c", small)) // stage 0 creates both
	g.Count(src.Map("pad1"))
	g.Count(src.Map("pad2"))
	g.Count(big.ZipPartitions("r", small)) // stage 3 reads both
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	run := func(tb TieBreak, touchBigLast bool) block.ID {
		m := NewManager(g, NewRecurringProfiler(refdist.FromGraph(g)), Options{TieBreak: tb})
		mon := m.NewNodePolicy(0).(*CacheMonitor)
		mon.OnAdd(big.Block(0))
		mon.OnAdd(small.Block(0))
		if touchBigLast {
			mon.OnAccess(big.Block(0)) // small becomes LRU
		}
		m.OnStageStart(1, 1)
		v, ok := mon.Victim(all)
		if !ok {
			t.Fatal("no victim")
		}
		return v
	}

	if v := run(TieLRU, true); v != small.Block(0) {
		t.Errorf("LRU tie-break victim = %v, want least-recently-used small", v)
	}
	if v := run(TieLargestFirst, true); v != big.Block(0) {
		t.Errorf("largest-first victim = %v, want big", v)
	}
	if v := run(TieSmallestFirst, false); v != small.Block(0) {
		t.Errorf("smallest-first victim = %v, want small", v)
	}
}

func TestTieBreakOnlyAppliesOnTies(t *testing.T) {
	// big is read sooner than small: distance dominates regardless of
	// the size tie-break.
	g := dag.New()
	src := g.Source("in", 2, 1<<20)
	big := src.Map("big", dag.WithPartSize(8<<20)).Persist(block.MemoryAndDisk)
	small := src.Map("small", dag.WithPartSize(1<<20)).Persist(block.MemoryAndDisk)
	g.Count(big.ZipPartitions("c", small)) // stage 0
	g.Count(big.Map("rb"))                 // stage 1: big read soon
	g.Count(src.Map("pad"))
	g.Count(small.Map("rs")) // stage 3: small read later
	m := NewManager(g, NewRecurringProfiler(refdist.FromGraph(g)), Options{TieBreak: TieLargestFirst})
	mon := m.NewNodePolicy(0).(*CacheMonitor)
	mon.OnAdd(big.Block(0))
	mon.OnAdd(small.Block(0))
	m.OnStageStart(0, 0)
	v, _ := mon.Victim(all)
	if v != small.Block(0) {
		t.Errorf("victim = %v; distance must dominate the size tie-break", v)
	}
}

func TestTieBreakString(t *testing.T) {
	if TieLRU.String() != "lru" || TieLargestFirst.String() != "largest-first" ||
		TieSmallestFirst.String() != "smallest-first" {
		t.Error("TieBreak strings wrong")
	}
}

func TestTieBreakCheapestRestore(t *testing.T) {
	// Both RDDs MEMORY_ONLY, equal distances, different lineage
	// depths: the deep one is expensive to recompute and must be kept.
	g := dag.New()
	src := g.Source("in", 2, 1<<20, dag.WithCost(100))
	cheap := src.Map("cheap", dag.WithCost(10)).Cache()
	deep := src.Map("d1", dag.WithCost(500)).Map("d2", dag.WithCost(500)).Cache()
	g.Count(cheap.ZipPartitions("c", deep)) // stage 0 creates both
	g.Count(src.Map("pad1"))
	g.Count(src.Map("pad2"))
	g.Count(cheap.ZipPartitions("r", deep)) // stage 3 reads both

	m := NewManager(g, NewRecurringProfiler(refdist.FromGraph(g)),
		Options{TieBreak: TieCheapestRestore})
	mon := m.NewNodePolicy(0).(*CacheMonitor)
	mon.OnAdd(deep.Block(0))
	mon.OnAdd(cheap.Block(0))
	mon.OnAccess(deep.Block(0)) // LRU would now pick cheap? no: cheap is LRU — force the opposite ordering
	m.OnStageStart(1, 1)
	v, ok := mon.Victim(all)
	if !ok || v != cheap.Block(0) {
		t.Errorf("victim = %v, want the cheap-to-restore block", v)
	}

	// Same setup, but recency reversed: the tie-break must still pick
	// the cheap one regardless of LRU order.
	mon2 := m.NewNodePolicy(1).(*CacheMonitor)
	mon2.OnAdd(cheap.Block(1))
	mon2.OnAdd(deep.Block(1))
	mon2.OnAccess(cheap.Block(1))
	v, ok = mon2.Victim(all)
	if !ok || v != cheap.Block(1) {
		t.Errorf("victim = %v, want cheap regardless of recency", v)
	}
}
