package core

import (
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/dag"
	"mrdspark/internal/refdist"
)

// fakeOps drives the manager without a simulator.
type fakeOps struct {
	nodes      int
	resident   map[block.ID]bool
	onDisk     map[block.ID]bool
	free       map[int]int64
	capacity   int64
	evicted    []block.ID
	prefetched []block.Info
	used       int64
	wasted     int64
}

func newFakeOps(nodes int, capacity int64) *fakeOps {
	f := &fakeOps{
		nodes: nodes, capacity: capacity,
		resident: map[block.ID]bool{}, onDisk: map[block.ID]bool{},
		free: map[int]int64{},
	}
	for i := 0; i < nodes; i++ {
		f.free[i] = capacity
	}
	return f
}

func (f *fakeOps) NumNodes() int                    { return f.nodes }
func (f *fakeOps) HomeNode(id block.ID) int         { return id.Partition % f.nodes }
func (f *fakeOps) Resident(_ int, id block.ID) bool { return f.resident[id] }
func (f *fakeOps) OnDisk(_ int, id block.ID) bool   { return f.onDisk[id] }
func (f *fakeOps) FreeBytes(n int) int64            { return f.free[n] }
func (f *fakeOps) CapacityBytes(int) int64          { return f.capacity }

func (f *fakeOps) Evict(_ int, id block.ID) bool {
	if !f.resident[id] {
		return false
	}
	delete(f.resident, id)
	f.evicted = append(f.evicted, id)
	return true
}

func (f *fakeOps) Prefetch(_ int, info block.Info) {
	f.prefetched = append(f.prefetched, info)
}

func (f *fakeOps) PrefetchOutcomes() (used, wasted int64) { return f.used, f.wasted }

// testGraph builds a graph with distinct reference patterns:
//
//	near  — read at stages 1 and 3
//	far   — read at stage 5 only
//	dead  — never read after creation
//
// All three are created by the stage-0 job; stages 2 and 4 are padding.
func testGraph(t *testing.T) (*dag.Graph, *dag.RDD, *dag.RDD, *dag.RDD) {
	t.Helper()
	g := dag.New()
	src := g.Source("in", 4, 1<<20)
	near := src.Map("near").Persist(block.MemoryAndDisk)
	far := src.Map("far").Persist(block.MemoryAndDisk)
	dead := src.Map("dead").Persist(block.MemoryAndDisk)
	g.Count(near.ZipPartitions("c1", far).ZipPartitions("c2", dead)) // stage 0
	g.Count(near.Map("u1"))                                          // stage 1
	g.Count(src.Map("pad1"))                                         // stage 2
	g.Count(near.Map("u2"))                                          // stage 3
	g.Count(src.Map("pad2"))                                         // stage 4
	g.Count(far.Map("u3"))                                           // stage 5
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, near, far, dead
}

func submitAll(m *Manager, g *dag.Graph) {
	for _, j := range g.Jobs {
		m.OnJobSubmit(j)
	}
}

// profileOf builds the whole-application profile of a test graph.
func profileOf(g *dag.Graph) *refdist.Profile { return refdist.FromGraph(g) }

func TestManagerTableDistances(t *testing.T) {
	g, near, far, dead := testGraph(t)
	m := NewFull(g)
	m.OnStageStart(1, 1)
	// near's stage-1 reference is being consumed by the current
	// stage; the table holds the distance to its NEXT read (stage 3).
	if d := m.distance(near.ID); d != 2 {
		t.Errorf("near distance at its read stage = %d, want 2 (next read)", d)
	}
	if d := m.distance(far.ID); d != 4 {
		t.Errorf("far distance = %d, want 4", d)
	}
	if d := m.distance(dead.ID); !refdist.IsInfinite(d) {
		t.Errorf("dead distance = %d, want infinite", d)
	}
	m.OnStageStart(4, 4)
	if d := m.distance(near.ID); !refdist.IsInfinite(d) {
		t.Errorf("near past last read = %d, want infinite", d)
	}
	if d := m.distance(far.ID); d != 1 {
		t.Errorf("far distance at stage 4 = %d, want 1", d)
	}
}

func TestManagerJobDistanceMetric(t *testing.T) {
	g, near, far, _ := testGraph(t)
	m := NewManager(g, NewRecurringProfiler(refdist.FromGraph(g)), Options{Metric: JobDistance})
	m.OnStageStart(1, 1)
	// The coarse job metric does not discretize within the job: the
	// current job's reference keeps distance 0.
	if d := m.distance(near.ID); d != 0 {
		t.Errorf("near job distance = %d, want 0", d)
	}
	if d := m.distance(far.ID); d != 4 {
		t.Errorf("far job distance = %d, want 4 (jobs, not stages)", d)
	}
}

func TestAdHocManagerSeesOnlySubmittedJobs(t *testing.T) {
	g, near, _, _ := testGraph(t)
	m := NewManager(g, NewAppProfiler(), Options{})
	m.OnJobSubmit(g.Jobs[0])
	m.OnStageStart(0, 0)
	// Only job 0 known: near has no known reads -> infinite.
	if d := m.distance(near.ID); !refdist.IsInfinite(d) {
		t.Errorf("ad-hoc unknown future = %d, want infinite", d)
	}
	m.OnJobSubmit(g.Jobs[1])
	m.OnStageStart(0, 1)
	if d := m.distance(near.ID); d != 1 {
		t.Errorf("after second job submit, distance = %d, want 1", d)
	}
	// The job-1 read at stage 1 is all the profile knows; once the
	// execution reaches it, the distance collapses to infinite again.
	m.OnStageStart(1, 1)
	if d := m.distance(near.ID); !refdist.IsInfinite(d) {
		t.Errorf("ad-hoc past the known read = %d, want infinite", d)
	}
}

func TestPurgeEvictsInfiniteDistanceBlocks(t *testing.T) {
	g, near, _, dead := testGraph(t)
	m := NewFull(g)
	ops := newFakeOps(2, 64<<20)
	m.Attach(ops)
	for p := 0; p < 4; p++ {
		ops.resident[near.Block(p)] = true
		ops.resident[dead.Block(p)] = true
	}
	ops.free[0], ops.free[1] = 0, 0 // no room: no prefetch noise
	m.OnStageStart(1, 1)
	if len(ops.evicted) != 4 {
		t.Fatalf("purged %d blocks, want dead's 4: %v", len(ops.evicted), ops.evicted)
	}
	for _, id := range ops.evicted {
		if id.RDD != dead.ID {
			t.Errorf("purged wrong block %v", id)
		}
	}
	st := m.Stats()
	if st.PurgeOrders != 1 || st.PurgedBlocks != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPurgeDisabled(t *testing.T) {
	g, _, _, dead := testGraph(t)
	m := NewManager(g, NewRecurringProfiler(refdist.FromGraph(g)), Options{DisablePurge: true})
	ops := newFakeOps(2, 64<<20)
	m.Attach(ops)
	ops.resident[dead.Block(0)] = true
	m.OnStageStart(1, 1)
	if len(ops.evicted) != 0 {
		t.Errorf("purge ran despite DisablePurge: %v", ops.evicted)
	}
}

func TestPrefetchSelectsLowestDistanceFirst(t *testing.T) {
	g, near, far, _ := testGraph(t)
	m := NewFull(g)
	ops := newFakeOps(1, 1<<30)
	m.Attach(ops)
	for p := 0; p < 4; p++ {
		ops.onDisk[near.Block(p)] = true
		ops.onDisk[far.Block(p)] = true
	}
	m.OnStageStart(2, 2) // near at distance 1, far at distance 3
	if len(ops.prefetched) != 8 {
		t.Fatalf("prefetched %d, want all 8", len(ops.prefetched))
	}
	for i := 0; i < 4; i++ {
		if ops.prefetched[i].ID.RDD != near.ID {
			t.Errorf("prefetch %d = %v, want near first (lower distance)", i, ops.prefetched[i].ID)
		}
	}
}

func TestPrefetchSkipsResidentAndMissingAndDead(t *testing.T) {
	g, near, _, dead := testGraph(t)
	m := NewFull(g)
	ops := newFakeOps(1, 1<<30)
	m.Attach(ops)
	ops.onDisk[near.Block(0)] = true
	ops.resident[near.Block(0)] = true // already in memory: skip
	ops.onDisk[near.Block(1)] = true   // prefetchable
	// near.Block(2) not on disk: unprefetchable.
	ops.onDisk[dead.Block(0)] = true // infinite distance: skip
	m.OnStageStart(2, 2)             // near next read at stage 3
	if len(ops.prefetched) != 1 || ops.prefetched[0].ID != near.Block(1) {
		t.Errorf("prefetched = %v, want exactly near block 1", ops.prefetched)
	}
}

func TestPrefetchThresholdGatesForcedPrefetch(t *testing.T) {
	g, near, _, _ := testGraph(t)
	for p := 0; p < 4; p++ {
		_ = p
	}
	// Case 1: free below threshold and block does not fit: no prefetch.
	m := NewFull(g)
	ops := newFakeOps(1, 100<<20)
	m.Attach(ops)
	ops.onDisk[near.Block(0)] = true
	ops.free[0] = 10 << 20 // 10% free < 25% threshold; block is 1MB and fits though
	m.OnStageStart(2, 2)
	if len(ops.prefetched) != 1 {
		t.Fatalf("fitting block not prefetched")
	}

	// Case 2: block larger than free but free above threshold: forced.
	m2 := NewFull(g)
	ops2 := newFakeOps(1, 100<<20)
	m2.Attach(ops2)
	ops2.onDisk[near.Block(0)] = true
	ops2.free[0] = 30 << 20
	// Make the block bigger than free memory.
	near.PartSize = 40 << 20
	defer func() { near.PartSize = 1 << 20 }()
	m2.OnStageStart(2, 2)
	if len(ops2.prefetched) != 1 {
		t.Errorf("forced prefetch did not fire above threshold")
	}
	if m2.Stats().ForcedPrefetch != 1 {
		t.Errorf("forced prefetch not counted: %+v", m2.Stats())
	}

	// Case 3: free below threshold and block does not fit: nothing.
	m3 := NewFull(g)
	ops3 := newFakeOps(1, 100<<20)
	m3.Attach(ops3)
	ops3.onDisk[near.Block(0)] = true
	ops3.free[0] = 10 << 20
	near.PartSize = 40 << 20
	m3.OnStageStart(2, 2)
	if len(ops3.prefetched) != 0 {
		t.Errorf("prefetch fired below threshold without fitting: %v", ops3.prefetched)
	}
}

func TestPrefetchSkipsBlocksLargerThanCapacity(t *testing.T) {
	g, near, _, _ := testGraph(t)
	m := NewFull(g)
	ops := newFakeOps(1, 1<<20) // capacity 1MB
	m.Attach(ops)
	ops.onDisk[near.Block(0)] = true
	near.PartSize = 2 << 20 // bigger than the whole store
	defer func() { near.PartSize = 1 << 20 }()
	m.OnStageStart(2, 2)
	if len(ops.prefetched) != 0 {
		t.Errorf("oversized block prefetched: %v", ops.prefetched)
	}
}

func TestEvictionOnlyDisablesPrefetch(t *testing.T) {
	g, near, _, _ := testGraph(t)
	m := NewManager(g, NewRecurringProfiler(refdist.FromGraph(g)), Options{DisablePrefetch: true})
	ops := newFakeOps(1, 1<<30)
	m.Attach(ops)
	ops.onDisk[near.Block(0)] = true
	m.OnStageStart(2, 2)
	if len(ops.prefetched) != 0 {
		t.Errorf("eviction-only variant prefetched: %v", ops.prefetched)
	}
}

func TestManagerNames(t *testing.T) {
	g, _, _, _ := testGraph(t)
	for _, tt := range []struct {
		opts Options
		want string
	}{
		{Options{}, "MRD"},
		{Options{DisablePrefetch: true}, "MRD(eviction-only)"},
		{Options{DisableEviction: true}, "MRD(prefetch-only)"},
		{Options{DisableEviction: true, DisablePrefetch: true}, "MRD(disabled)"},
	} {
		m := NewManager(g, NewAppProfiler(), tt.opts)
		if got := m.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestPurgeWithJobDistanceMetric(t *testing.T) {
	g, near, _, dead := testGraph(t)
	m := NewManager(g, NewRecurringProfiler(refdist.FromGraph(g)), Options{Metric: JobDistance})
	ops := newFakeOps(2, 64<<20)
	m.Attach(ops)
	ops.resident[dead.Block(0)] = true
	ops.resident[near.Block(0)] = true
	ops.free[0], ops.free[1] = 0, 0
	m.OnStageStart(1, 1)
	// Only dead (no references in any job) is purged; near has a read
	// in the current job and a later one.
	if len(ops.evicted) != 1 || ops.evicted[0] != dead.Block(0) {
		t.Errorf("purged %v, want only dead's block", ops.evicted)
	}
}

func TestPrefetchOnlyStillArbitratesArrivals(t *testing.T) {
	// In prefetch-only mode the monitor evicts LRU, but a prefetch
	// arrival must still refuse to displace nearer blocks.
	g, near, far, _ := testGraph(t)
	m := NewManager(g, NewRecurringProfiler(refdist.FromGraph(g)), Options{DisableEviction: true})
	mon := m.NewNodePolicy(0).(*CacheMonitor)
	m.OnStageStart(2, 2) // near d=1, far d=3
	if mon.AllowPrefetchEviction(far.BlockInfo(0), near.Block(0)) {
		t.Error("prefetch-only monitor allowed evicting a nearer block")
	}
	if !mon.AllowPrefetchEviction(near.BlockInfo(0), far.Block(0)) {
		t.Error("prefetch-only monitor refused a strictly-better trade")
	}
}

func TestManagerStringAndStats(t *testing.T) {
	g, _, _, _ := testGraph(t)
	m := NewFull(g)
	if s := m.String(); s == "" {
		t.Error("empty manager description")
	}
	m.OnStageStart(1, 1)
	if m.Stats().TableUpdates != 1 {
		t.Errorf("table updates = %d", m.Stats().TableUpdates)
	}
	if m.Stats().MaxTableEntries == 0 {
		t.Error("table high-water mark not tracked")
	}
	if m.Profiler() == nil {
		t.Error("profiler accessor nil")
	}
}
