package core

// The paper's conclusion names "modifying the prefetching memory
// threshold to be dynamic and automated" as future work (§6). This
// file implements that extension: an AIMD-style controller that tunes
// the forced-prefetch threshold from the prefetch-outcome feedback the
// CacheMonitors report (Table 2's reportCacheStatus).
//
// Control law, evaluated once per stage:
//
//   waste share > wasteHigh  -> threshold *= backoff   (less aggressive)
//   waste share < wasteLow,
//   and prefetches are used  -> threshold -= step      (more aggressive)
//
// The threshold is clamped to [minThreshold, maxThreshold]. A high
// threshold demands more free memory before a forced prefetch, i.e.
// throttles aggression; a low one forces earlier.

const (
	dynWasteHigh    = 0.30
	dynWasteLow     = 0.10
	dynBackoff      = 1.5
	dynStep         = 0.05
	dynMinThreshold = 0.05
	dynMaxThreshold = 0.90
	// dynMinSample is the minimum number of new outcomes between
	// adjustments; reacting to one or two arrivals just oscillates.
	dynMinSample = 8
)

// Horizon bounds for the adaptive candidate-distance gate: when
// prefetches go to waste, the controller narrows how far into the
// future it is willing to prefetch; when they pay off, it widens.
const (
	dynMinHorizon     = 1
	dynMaxHorizon     = 1 << 20
	dynInitialHorizon = 32
)

// thresholdController holds the adaptive state: the forced-prefetch
// memory threshold and the candidate-distance horizon.
type thresholdController struct {
	threshold  float64
	horizon    int
	lastUsed   int64
	lastWasted int64
	// Adjustments counts control changes, for the ablation report.
	Adjustments int
}

func newThresholdController(initial float64) *thresholdController {
	return &thresholdController{threshold: initial, horizon: dynMaxHorizon}
}

// update consumes the cumulative prefetch outcomes and adapts the
// controls when enough new evidence has accumulated.
func (c *thresholdController) update(used, wasted int64) {
	if c.horizon == dynMaxHorizon {
		// First update under dynamic control: start from a moderate
		// horizon so there is room to adapt in both directions.
		c.horizon = dynInitialHorizon
	}
	dUsed := used - c.lastUsed
	dWasted := wasted - c.lastWasted
	total := dUsed + dWasted
	if total < dynMinSample {
		return
	}
	c.lastUsed, c.lastWasted = used, wasted
	share := float64(dWasted) / float64(total)
	switch {
	case share > dynWasteHigh:
		// Back off: demand more free memory before forcing, and only
		// prefetch the most imminent blocks.
		c.threshold *= dynBackoff
		c.horizon /= 2
		c.Adjustments++
	case share < dynWasteLow && dUsed > 0:
		// Prefetches are paying off: force earlier and look further.
		c.threshold -= dynStep
		c.horizon *= 2
		c.Adjustments++
	default:
		return
	}
	if c.threshold > dynMaxThreshold {
		c.threshold = dynMaxThreshold
	}
	if c.threshold < dynMinThreshold {
		c.threshold = dynMinThreshold
	}
	if c.horizon < dynMinHorizon {
		c.horizon = dynMinHorizon
	}
	if c.horizon > dynMaxHorizon {
		c.horizon = dynMaxHorizon
	}
}
