package core

import (
	"container/list"

	"mrdspark/internal/block"
	"mrdspark/internal/obs"
	"mrdspark/internal/refdist"
)

// CacheMonitor is the distributed component deployed on each worker
// node (§4.2): it reads the reference distances the manager maintains
// (getReferenceDistance), and when the node's store needs space it
// evicts the resident block with the greatest distance (evictBlock),
// infinite-distance blocks first. With MRD eviction disabled the
// monitor reproduces Spark's default LRU behaviour, giving the paper's
// prefetch-only configuration.
type CacheMonitor struct {
	mgr      *Manager
	node     int
	resident map[block.ID]*list.Element
	order    *list.List // recency: front = MRU, back = LRU
	// hits mirrors part of Table 2's reportCacheStatus: the monitor's
	// own count of read hits, reported back to the manager. Full
	// hit/miss accounting lives in the store's metrics.
	hits int64
}

func newCacheMonitor(m *Manager, node int) *CacheMonitor {
	return &CacheMonitor{
		mgr:      m,
		node:     node,
		resident: map[block.ID]*list.Element{},
		order:    list.New(),
	}
}

// reset clears local state after a node failure; the manager re-issues
// the (shared) table.
func (c *CacheMonitor) reset() {
	c.resident = map[block.ID]*list.Element{}
	c.order = list.New()
}

// OnAdd implements policy.Policy.
func (c *CacheMonitor) OnAdd(id block.ID) {
	if e, ok := c.resident[id]; ok {
		c.order.MoveToFront(e)
		return
	}
	c.resident[id] = c.order.PushFront(id)
}

// OnAccess implements policy.Policy.
func (c *CacheMonitor) OnAccess(id block.ID) {
	c.hits++
	if e, ok := c.resident[id]; ok {
		c.order.MoveToFront(e)
	}
}

// OnRemove implements policy.Policy.
func (c *CacheMonitor) OnRemove(id block.ID) {
	if e, ok := c.resident[id]; ok {
		c.order.Remove(e)
		delete(c.resident, id)
	}
}

// Victim implements policy.Policy. Under MRD eviction it returns the
// evictable block with the greatest reference distance — infinite
// distances are greatest of all — breaking distance ties by least
// recent use. Under prefetch-only configurations it returns the plain
// LRU victim; so does a monitor whose re-issued table has not yet
// propagated after a node failure (graceful degradation: recency is
// wrong less often than distances from a table that no longer exists).
func (c *CacheMonitor) Victim(evictable func(id block.ID) bool) (block.ID, bool) {
	if stale := c.mgr.tableStale(c.node); stale || c.mgr.opts.DisableEviction {
		if stale {
			c.mgr.stats.StaleFallbacks++
		}
		for e := c.order.Back(); e != nil; e = e.Prev() {
			id := e.Value.(block.ID)
			if evictable(id) {
				if stale {
					c.mgr.bus.Emit(obs.BlockEv(obs.KindStaleFallback, c.node, id, 0))
				} else {
					c.mgr.bus.Emit(obs.BlockEv(obs.KindEvictVerdict, c.node, id, 0).
						WithVerdict("lru"))
				}
				return id, true
			}
		}
		return block.ID{}, false
	}
	best, found := block.ID{}, false
	bestDist := 0
	bestInf := false
	// Walk LRU -> MRU so the least recently used block wins among
	// equal distances under the default tie-break; the optional
	// size-aware tie-breaks (§3.3's future work) override it.
	for e := c.order.Back(); e != nil; e = e.Prev() {
		id := e.Value.(block.ID)
		if !evictable(id) {
			continue
		}
		d := c.mgr.distance(id.RDD)
		inf := refdist.IsInfinite(d)
		switch {
		case !found:
			best, bestDist, bestInf, found = id, d, inf, true
		case inf && !bestInf:
			best, bestDist, bestInf = id, d, inf
		case inf == bestInf && !inf && d > bestDist:
			best, bestDist, bestInf = id, d, inf
		case inf == bestInf && (inf || d == bestDist) && c.tieBeats(id, best):
			best, bestDist, bestInf = id, d, inf
		}
		if bestInf && c.mgr.opts.TieBreak == TieLRU {
			// Nothing outranks an infinite-distance block, and the
			// LRU-first walk already fixed the tiebreak.
			break
		}
	}
	if found {
		c.mgr.bus.Emit(obs.BlockEv(obs.KindEvictVerdict, c.node, best, 0).
			WithValue(int64(bestDist)).WithVerdict("mrd"))
	}
	return best, found
}

// tieBeats reports whether the candidate should replace the incumbent
// among equal-distance blocks under the configured tie-break. The LRU
// default never replaces: the LRU-first walk already found the right
// block.
func (c *CacheMonitor) tieBeats(id, best block.ID) bool {
	switch c.mgr.opts.TieBreak {
	case TieLargestFirst:
		return c.blockSize(id) > c.blockSize(best)
	case TieSmallestFirst:
		return c.blockSize(id) < c.blockSize(best)
	case TieCheapestRestore:
		return c.restoreCost(id) < c.restoreCost(best)
	default:
		return false
	}
}

// restoreCost estimates the price of getting the block back: a disk
// read (microseconds at a nominal 40 MB/s) for restorable levels, the
// lineage recompute estimate for MEMORY_ONLY.
func (c *CacheMonitor) restoreCost(id block.ID) int64 {
	if id.RDD < 0 || id.RDD >= len(c.mgr.graph.RDDs) {
		return 0
	}
	r := c.mgr.graph.RDDs[id.RDD]
	if r.Level == block.MemoryAndDisk {
		return r.PartSize * 1_000_000 / (40 << 20)
	}
	return c.mgr.graph.RestoreCost(r)
}

func (c *CacheMonitor) blockSize(id block.ID) int64 {
	if id.RDD < 0 || id.RDD >= len(c.mgr.graph.RDDs) {
		return 0
	}
	return c.mgr.graph.RDDs[id.RDD].PartSize
}

// Distance exposes the monitor's view of a block's current reference
// distance (Table 2's getReferenceDistance).
func (c *CacheMonitor) Distance(id block.ID) int { return c.mgr.distance(id.RDD) }

// AllowPrefetchEviction implements policy.PrefetchArbiter: a prefetch
// arrival may evict a resident block only when that block's reference
// distance is strictly larger (infinite counting as largest). Without
// the check, equal-distance blocks displace each other in an endless
// churn — the counter-productive case §4.4 describes.
func (c *CacheMonitor) AllowPrefetchEviction(incoming block.Info, victim block.ID) bool {
	if c.mgr.tableStale(c.node) {
		// No usable distances: refuse prefetch-triggered evictions
		// rather than displace resident data on stale information.
		return false
	}
	vd := c.mgr.distance(victim.RDD)
	if refdist.IsInfinite(vd) {
		return true
	}
	id := c.mgr.distance(incoming.ID.RDD)
	if refdist.IsInfinite(id) {
		return false
	}
	return vd > id
}
