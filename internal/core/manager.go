package core

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"mrdspark/internal/block"
	"mrdspark/internal/dag"
	"mrdspark/internal/obs"
	"mrdspark/internal/policy"
	"mrdspark/internal/refdist"
)

// Options configures an MRD manager. The zero value is the paper's
// full configuration: stage-distance metric, eviction and prefetching
// both enabled, 25% prefetch threshold, no pre-check.
type Options struct {
	// Metric selects stage or job distance (§5.7).
	Metric Metric
	// DisableEviction turns off MRD eviction and purge orders; node
	// monitors fall back to LRU (the paper's "prefetch-only" bars in
	// Fig 4).
	DisableEviction bool
	// DisablePrefetch turns off prefetch orders (the "eviction-only"
	// bars in Fig 4).
	DisablePrefetch bool
	// PrefetchThreshold is the fraction of cache capacity that must be
	// free for a forced prefetch (one that may trigger evictions).
	// Zero means the paper's experimentally chosen 25% (§4.3).
	PrefetchThreshold float64
	// PrefetchDistanceCheck enables the future-work refinement of
	// §4.4: a forced prefetch is only issued when the candidate's
	// distance is strictly smaller than the largest distance among
	// the node's resident blocks (otherwise the prefetch would evict
	// data more urgent than what it loads).
	PrefetchDistanceCheck bool
	// DisablePurge keeps the infinite-distance all-out purge from
	// firing, for the A1 ablation. The purge runs in both the
	// eviction and prefetch workflows: it is what frees the memory
	// aggressive prefetching fills (§4.2), so only disabling both
	// workflows — or this option — turns it off.
	DisablePurge bool
	// DynamicThreshold enables the adaptive prefetch threshold the
	// paper's conclusion names as future work: an AIMD controller
	// driven by the monitors' prefetch-outcome reports replaces the
	// fixed 25%.
	DynamicThreshold bool
	// ReissueDelayStages models the propagation delay of the §4.4
	// MRD_Table re-issue after a node failure: the replacement monitor
	// runs without distances for that many stages, during which it
	// degrades gracefully to recency (LRU) victim selection instead of
	// evicting on stale distances. Zero means the re-issue is
	// instantaneous (the paper's idealization).
	ReissueDelayStages int
	// TieBreak orders victims with equal reference distance (§3.3
	// leaves this prioritization as future work). The default is
	// least-recently-used.
	TieBreak TieBreak
}

// TieBreak selects the ordering among equal-distance eviction
// candidates.
type TieBreak int

const (
	// TieLRU evicts the least recently used of the tied blocks (the
	// implicit behaviour of the paper's implementation).
	TieLRU TieBreak = iota
	// TieLargestFirst evicts the largest tied block, freeing the most
	// memory per eviction.
	TieLargestFirst
	// TieSmallestFirst evicts the smallest tied block, minimizing the
	// bytes that must be restored if the choice was wrong.
	TieSmallestFirst
	// TieCheapestRestore evicts the tied block that is cheapest to
	// bring back: the disk-read bytes for restorable blocks, the
	// lineage recompute estimate (dag.RestoreCost) for MEMORY_ONLY
	// blocks.
	TieCheapestRestore
)

// String names the tie-break strategy.
func (t TieBreak) String() string {
	switch t {
	case TieLargestFirst:
		return "largest-first"
	case TieSmallestFirst:
		return "smallest-first"
	case TieCheapestRestore:
		return "cheapest-restore"
	default:
		return "lru"
	}
}

func (o Options) initialThreshold() float64 {
	if o.PrefetchThreshold <= 0 {
		return 0.25
	}
	return o.PrefetchThreshold
}

// Stats counts the manager's cluster-wide actions for the overhead
// accounting of §4.4.
type Stats struct {
	TableUpdates    int // newReferenceDistance invocations (per stage)
	PurgeOrders     int // all-out purge orders issued
	PurgedBlocks    int // blocks evicted by purge orders
	PrefetchOrders  int // prefetch orders sent to nodes
	ForcedPrefetch  int // prefetch orders that may evict on arrival
	TableReissues   int // MRD_Table re-sends after node failures
	MaxTableEntries int // high-water mark of MRD_Table size
	// StaleFallbacks counts victim selections made by recency order
	// because the node's re-issued table had not yet arrived.
	StaleFallbacks int
	// StaleWindowStages counts node-stages executed inside a stale-
	// table window (table re-issued but not yet propagated).
	StaleWindowStages int
}

// mrdTable is the incremental MRD_Table: instead of re-deriving every
// distance from the profile at each stage boundary (map churn plus a
// binary search per RDD per stage), it keeps each RDD's sorted read
// schedule with two cursors — one in stage coordinates, one in job
// coordinates — advanced monotonically as execution progresses.
// Distances are then computed on demand as reads[cursor] minus the
// current position. A profile change (ad-hoc job submission, recurring
// discrepancy fallback) or a backwards stage jump triggers a full
// rebuild; the steady state per stage is a cursor check per RDD and
// zero allocations.
type mrdTable struct {
	profile *refdist.Profile
	version int
	valid   bool
	// lastStage/lastJob are the positions the cursors were last
	// advanced to; regression forces a rebuild.
	lastStage, lastJob int

	ids   []int           // cached-RDD ids, ascending (the table's key set)
	reads [][]refdist.Ref // dense by rddID: the RDD's read schedule
	known []bool          // dense by rddID: id present in ids
	// spos is the consumed stage cursor: index of the first read at or
	// after curStage+1 (§4.1: a current-stage reference is already in
	// the past for eviction purposes). jpos is the job cursor: index of
	// the first read at or after curJob.
	spos, jpos []int
}

// Manager is the centralized MRDmanager of §4.2: it owns the
// MRD_Table, tracks execution progress, decrements distances as stages
// start, issues all-out purge orders when an RDD's distance reaches
// infinity, and selects prefetch targets per node (Algorithm 1).
type Manager struct {
	profiler *AppProfiler
	graph    *dag.Graph
	opts     Options

	// tbl is the MRD_Table. Distances advance with the stage pointer —
	// the functional equivalent of the paper's per-stage decrement
	// "unless some stages are skipped, regardless the appropriate value
	// is calculated based on the StageID".
	tbl      mrdTable
	curStage int
	curJob   int

	// pfPerNode is the prefetch candidate buffer, reused across stages
	// so Algorithm 1's per-node candidate walk allocates nothing in
	// steady state.
	pfPerNode [][]pfCandidate

	ops       policy.ClusterOps
	monitors  map[int]*CacheMonitor
	stats     Stats
	threshold *thresholdController
	bus       *obs.Bus // nil until attached; Emit on nil is a no-op

	// stageEpoch counts OnStageStart calls; staleUntil[node] is the
	// last epoch at which that node's monitor still lacks the re-issued
	// table (ReissueDelayStages > 0 only).
	stageEpoch int
	staleUntil map[int]int
}

// NewManager builds an MRD manager for the application. The graph
// supplies immutable RDD metadata (partition counts and sizes); how
// much of the reference schedule is visible is governed entirely by
// the profiler's mode.
func NewManager(g *dag.Graph, profiler *AppProfiler, opts Options) *Manager {
	return &Manager{
		profiler:   profiler,
		graph:      g,
		opts:       opts,
		monitors:   map[int]*CacheMonitor{},
		threshold:  newThresholdController(opts.initialThreshold()),
		staleUntil: map[int]int{},
	}
}

// NewFull returns the paper's full MRD configuration in recurring mode
// over the complete application DAG.
func NewFull(g *dag.Graph) *Manager {
	return NewManager(g, NewRecurringProfiler(refdist.FromGraph(g)), Options{})
}

// Name implements policy.Factory.
func (m *Manager) Name() string {
	switch {
	case m.opts.DisableEviction && m.opts.DisablePrefetch:
		return "MRD(disabled)"
	case m.opts.DisableEviction:
		return "MRD(prefetch-only)"
	case m.opts.DisablePrefetch:
		return "MRD(eviction-only)"
	default:
		return "MRD"
	}
}

// Stats returns the manager's action counters.
func (m *Manager) Stats() Stats { return m.stats }

// Profiler returns the manager's AppProfiler.
func (m *Manager) Profiler() *AppProfiler { return m.profiler }

// Attach implements policy.ClusterAware.
func (m *Manager) Attach(ops policy.ClusterOps) { m.ops = ops }

// AttachBus implements obs.Attacher: the manager emits its policy
// decisions — purge orders, prefetch orders, table re-issues, eviction
// verdicts — onto the run's event bus.
func (m *Manager) AttachBus(b *obs.Bus) { m.bus = b }

// NewNodePolicy implements policy.Factory: it deploys a CacheMonitor
// on the worker node. With eviction disabled the monitor degrades to
// Spark's default LRU victim selection.
func (m *Manager) NewNodePolicy(nodeID int) policy.Policy {
	mon := newCacheMonitor(m, nodeID)
	m.monitors[nodeID] = mon
	return mon
}

// OnJobSubmit implements policy.JobObserver: the DAGScheduler hands
// the job DAG to the AppProfiler, and the manager refreshes the
// MRD_Table with the resulting profile (Table 2's
// updateReferenceDistance).
func (m *Manager) OnJobSubmit(j *dag.Job) {
	m.curJob = j.ID
	m.profiler.ParseDAG(j)
	m.refreshTable()
}

// OnStageStart implements policy.StageObserver: this is Table 2's
// newReferenceDistance — advancing the stage pointer recomputes every
// distance in the table — followed by the purge and prefetch phases of
// Algorithm 1.
func (m *Manager) OnStageStart(stageID, jobID int) {
	m.stageEpoch++
	// Expire stale-table windows that ended before this stage; count
	// the node-stages still inside one. (Map iteration: per-key delete
	// and counter increments only, so order does not affect outcomes.)
	for node, until := range m.staleUntil {
		if until < m.stageEpoch {
			delete(m.staleUntil, node)
		} else {
			m.stats.StaleWindowStages++
		}
	}
	m.curStage = stageID
	m.curJob = jobID
	m.refreshTable()
	m.stats.TableUpdates++
	if !m.opts.DisablePurge && !(m.opts.DisableEviction && m.opts.DisablePrefetch) {
		m.purgeInfinite()
	}
	if !m.opts.DisablePrefetch {
		if m.opts.DynamicThreshold && m.ops != nil {
			m.threshold.update(m.ops.PrefetchOutcomes())
		}
		m.prefetch()
	}
}

// Threshold returns the current forced-prefetch threshold (adaptive
// under DynamicThreshold, otherwise the configured constant) and how
// many times the controller has adjusted it.
func (m *Manager) Threshold() (value float64, adjustments int) {
	return m.threshold.threshold, m.threshold.Adjustments
}

// OnNodeFailure implements policy.NodeFailureObserver: the manager
// re-issues the MRD_Table to the replacement monitor (§4.4). Because
// monitors read the shared table, the re-issue is a counter plus a
// monitor reset. With ReissueDelayStages > 0 the re-issued table takes
// that many stages to propagate; until it lands, the node's monitor is
// stale and falls back to recency eviction (see CacheMonitor.Victim).
func (m *Manager) OnNodeFailure(node int) {
	m.stats.TableReissues++
	m.bus.Emit(obs.Ev(obs.KindTableReissue, node).
		WithValue(int64(m.opts.ReissueDelayStages)))
	if mon, ok := m.monitors[node]; ok {
		mon.reset()
	}
	if m.opts.ReissueDelayStages > 0 {
		// Failures fire at a stage boundary before OnStageStart bumps
		// the epoch, so a delay of D keeps the node stale through the
		// D stages that start next.
		m.staleUntil[node] = m.stageEpoch + m.opts.ReissueDelayStages
	}
}

// tableStale reports whether the node's monitor is inside a stale-
// table window: its distances are unavailable until the re-issued
// MRD_Table propagates.
func (m *Manager) tableStale(node int) bool {
	until, ok := m.staleUntil[node]
	return ok && until >= m.stageEpoch
}

// distance returns the current reference distance for the RDD:
// refdist.Infinite when it has no remaining references (or is unknown
// to the profile, which in ad-hoc mode is exactly the paper's
// "assume infinite until a new job is submitted"). The stage metric is
// the consumed distance (table semantics); the job metric is the plain
// job distance — both read straight off the table cursors.
func (m *Manager) distance(rddID int) int {
	t := &m.tbl
	if rddID < 0 || rddID >= len(t.known) || !t.known[rddID] {
		return refdist.Infinite
	}
	reads := t.reads[rddID]
	if m.opts.Metric == JobDistance {
		j := t.jpos[rddID]
		if j >= len(reads) {
			return refdist.Infinite
		}
		return reads[j].Job - m.curJob
	}
	s := t.spos[rddID]
	if s >= len(reads) {
		return refdist.Infinite
	}
	return reads[s].Stage - m.curStage
}

// refreshTable brings the MRD_Table to the current execution point.
// Steady state (same profile, execution moving forward) only advances
// the per-RDD cursors; a profile change or a position regression
// rebuilds from scratch.
func (m *Manager) refreshTable() {
	p := m.profiler.Profile()
	t := &m.tbl
	if !t.valid || t.profile != p || t.version != p.Version() ||
		m.curStage < t.lastStage || m.curJob < t.lastJob {
		m.rebuildTable(p)
	} else {
		for _, id := range t.ids {
			reads := t.reads[id]
			s := t.spos[id]
			for s < len(reads) && reads[s].Stage <= m.curStage {
				s++
			}
			t.spos[id] = s
			j := t.jpos[id]
			for j < len(reads) && reads[j].Job < m.curJob {
				j++
			}
			t.jpos[id] = j
		}
	}
	t.lastStage, t.lastJob = m.curStage, m.curJob
	if n := len(t.ids); n > m.stats.MaxTableEntries {
		m.stats.MaxTableEntries = n
	}
}

// rebuildTable recomputes the table's key set and cursor positions
// from the profile (binary search per RDD — the cost the old
// implementation paid at every stage boundary, now paid only when the
// profile actually changes).
func (m *Manager) rebuildTable(p *refdist.Profile) {
	t := &m.tbl
	t.profile, t.version, t.valid = p, p.Version(), true
	t.ids = append(t.ids[:0], p.RDDs()...)
	n := len(m.graph.RDDs)
	for _, id := range t.ids {
		if id >= n {
			n = id + 1
		}
	}
	if len(t.known) < n {
		t.reads = make([][]refdist.Ref, n)
		t.known = make([]bool, n)
		t.spos = make([]int, n)
		t.jpos = make([]int, n)
	} else {
		for i := range t.known {
			t.reads[i], t.known[i], t.spos[i], t.jpos[i] = nil, false, 0, 0
		}
	}
	for _, id := range t.ids {
		reads := p.Reads(id)
		t.reads[id] = reads
		t.known[id] = true
		t.spos[id] = sort.Search(len(reads), func(i int) bool { return reads[i].Stage >= m.curStage+1 })
		t.jpos[id] = sort.Search(len(reads), func(i int) bool { return reads[i].Job >= m.curJob })
	}
}

// purgeInfinite is the eviction phase's first instance (Algorithm 1,
// lines 13–17): any block whose distance has gone infinite is evicted
// from every node in the cluster, freeing space before memory pressure
// forces it.
func (m *Manager) purgeInfinite() {
	if m.ops == nil {
		return
	}
	// A block is dead only when no reference remains at or after the
	// current stage — the table's consumed distances would wrongly
	// condemn blocks whose last reference is the stage about to read
	// them. The cursors hold both views: the consumed position is past
	// the end AND the read just before it (if any) is not the current
	// stage's.
	t := &m.tbl
	purged := 0
	for _, rddID := range t.ids {
		reads := t.reads[rddID]
		var dead bool
		if m.opts.Metric == JobDistance {
			dead = t.jpos[rddID] >= len(reads)
		} else {
			s := t.spos[rddID]
			dead = s >= len(reads) && (s == 0 || reads[s-1].Stage != m.curStage)
		}
		if !dead {
			continue
		}
		r := m.graph.RDDs[rddID]
		for p := 0; p < r.NumPartitions; p++ {
			id := r.Block(p)
			node := m.ops.HomeNode(id)
			if m.ops.Resident(node, id) && m.ops.Evict(node, id) {
				m.stats.PurgedBlocks++
				purged++
			}
		}
	}
	if purged > 0 {
		m.stats.PurgeOrders++
		m.bus.Emit(obs.Ev(obs.KindPurgeOrder, obs.ClusterScope).WithValue(int64(purged)))
	}
}

// pfCandidate is one prefetchable block with its current distance.
type pfCandidate struct {
	info block.Info
	dist int
}

// prefetch is the prefetching phase (Algorithm 1, lines 24–29): per
// node, walk candidate blocks in ascending distance order and issue a
// prefetch when the block fits in free memory, or force it (allowing
// evictions on arrival) while free memory exceeds the threshold.
func (m *Manager) prefetch() {
	if m.ops == nil {
		return
	}
	if len(m.pfPerNode) != m.ops.NumNodes() {
		m.pfPerNode = make([][]pfCandidate, m.ops.NumNodes())
	}
	perNode := m.pfPerNode
	for i := range perNode {
		perNode[i] = perNode[i][:0]
	}
	for _, rddID := range m.tbl.ids {
		d := m.distance(rddID)
		// Skip infinite distances (no future use) and distance zero:
		// the currently executing stage's demand reads are already in
		// flight, so prefetching them would only duplicate I/O. Under
		// dynamic control, also skip anything beyond the adaptive
		// horizon.
		if refdist.IsInfinite(d) || d < 1 {
			continue
		}
		if m.opts.DynamicThreshold && d > m.threshold.horizon {
			continue
		}
		r := m.graph.RDDs[rddID]
		for p := 0; p < r.NumPartitions; p++ {
			id := r.Block(p)
			node := m.ops.HomeNode(id)
			if m.ops.Resident(node, id) || !m.ops.OnDisk(node, id) {
				continue
			}
			perNode[node] = append(perNode[node], pfCandidate{info: r.BlockInfo(p), dist: d})
		}
	}
	threshold := m.threshold.threshold
	for node, cands := range perNode {
		slices.SortStableFunc(cands, func(a, b pfCandidate) int {
			if a.dist != b.dist {
				return cmp.Compare(a.dist, b.dist)
			}
			if a.info.ID == b.info.ID {
				return 0
			}
			if a.info.ID.Less(b.info.ID) {
				return -1
			}
			return 1
		})
		free := m.ops.FreeBytes(node)
		capacity := m.ops.CapacityBytes(node)
		limit := int64(threshold * float64(capacity))
		for _, c := range cands {
			if c.info.Size > capacity {
				continue // can never fit; don't waste bandwidth
			}
			switch {
			case c.info.Size <= free:
				m.bus.Emit(obs.BlockEv(obs.KindPrefetchOrder, node, c.info.ID, c.info.Size).
					WithValue(int64(c.dist)).WithVerdict("fits"))
				m.ops.Prefetch(node, c.info)
				m.stats.PrefetchOrders++
				free -= c.info.Size
			case free > limit:
				// Forced prefetch: the store will evict max-distance
				// blocks on arrival. The optional pre-check skips it
				// when the eviction would be counter-productive.
				if m.opts.PrefetchDistanceCheck && !m.worthForcing(node, c.dist) {
					continue
				}
				m.bus.Emit(obs.BlockEv(obs.KindPrefetchOrder, node, c.info.ID, c.info.Size).
					WithValue(int64(c.dist)).WithVerdict("forced"))
				m.ops.Prefetch(node, c.info)
				m.stats.PrefetchOrders++
				m.stats.ForcedPrefetch++
				free -= c.info.Size
				if free < 0 {
					free = 0
				}
			}
		}
	}
}

// worthForcing reports whether the node holds at least one resident
// block with a strictly larger distance than dist, i.e. whether a
// forced prefetch would evict something less urgent than it loads.
func (m *Manager) worthForcing(node int, dist int) bool {
	mon, ok := m.monitors[node]
	if !ok {
		return true
	}
	for id := range mon.resident {
		d := m.distance(id.RDD)
		if refdist.IsInfinite(d) || d > dist {
			return true
		}
	}
	return false
}

// String summarizes the manager configuration.
func (m *Manager) String() string {
	return fmt.Sprintf("%s[metric=%s,mode=%s]", m.Name(), m.opts.Metric, m.profiler.Mode())
}
