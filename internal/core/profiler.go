// Package core implements the paper's contribution: the Most Reference
// Distance (MRD) cache management policy (§4). It mirrors the paper's
// architecture: a centralized AppProfiler parses job DAGs into
// reference-distance profiles, a centralized MRDManager maintains the
// MRD_Table and issues purge and prefetch orders, and one CacheMonitor
// per worker node makes local eviction decisions from the table.
package core

import (
	"mrdspark/internal/dag"
	"mrdspark/internal/refdist"
)

// Mode selects how much of the application DAG is visible up front
// (paper §4.1's two modus operandi).
type Mode int

const (
	// AdHoc mode builds the reference-distance profile one job at a
	// time as jobs are submitted; references beyond the known jobs
	// are treated as infinite.
	AdHoc Mode = iota
	// Recurring mode loads the whole-application profile saved from a
	// previous run before execution begins.
	Recurring
)

// String names the mode.
func (m Mode) String() string {
	if m == AdHoc {
		return "ad-hoc"
	}
	return "recurring"
}

// Metric selects the workflow subdivision distances are measured in
// (paper §3.2 / §5.7).
type Metric int

const (
	// StageDistance is the fine-grained default metric.
	StageDistance Metric = iota
	// JobDistance is the coarse alternative; within one job every
	// reference looks equidistant, which §5.7 shows degrades MRD.
	JobDistance
)

// String names the metric.
func (m Metric) String() string {
	if m == StageDistance {
		return "stage"
	}
	return "job"
}

// AppProfiler receives job DAGs from the scheduler, parses them into a
// reference-distance profile (the parseDAG API of Table 2), and hands
// the profile to the MRDManager. For recurring applications it starts
// from a stored whole-application profile and checks each submitted
// job against it, counting discrepancies; for ad-hoc applications the
// profile grows job by job.
type AppProfiler struct {
	mode    Mode
	profile *refdist.Profile
	// observed accumulates what the running application actually
	// submits, so a recurring profile can be verified and a partial
	// first run resumed (paper §4.4 fault tolerance).
	observed      *refdist.Profile
	discrepancies int
}

// NewAppProfiler creates an ad-hoc profiler with no prior knowledge.
func NewAppProfiler() *AppProfiler {
	return &AppProfiler{
		mode:     AdHoc,
		profile:  refdist.NewProfile(),
		observed: refdist.NewProfile(),
	}
}

// NewRecurringProfiler creates a profiler preloaded with the stored
// whole-application profile from a previous run.
func NewRecurringProfiler(stored *refdist.Profile) *AppProfiler {
	return &AppProfiler{
		mode:     Recurring,
		profile:  stored,
		observed: refdist.NewProfile(),
	}
}

// Mode returns the profiler's operating mode.
func (a *AppProfiler) Mode() Mode { return a.mode }

// Profile returns the profile the MRDManager should consult.
func (a *AppProfiler) Profile() *refdist.Profile { return a.profile }

// Observed returns the profile of references actually submitted so
// far; storing it after the run is how recurring profiles are created
// and how interrupted first runs resume.
func (a *AppProfiler) Observed() *refdist.Profile { return a.observed }

// Discrepancies returns how many submitted jobs disagreed with the
// stored recurring profile.
func (a *AppProfiler) Discrepancies() int { return a.discrepancies }

// ParseDAG ingests one submitted job (Table 2's parseDAG). In ad-hoc
// mode the working profile grows; in recurring mode the stored profile
// already covers the job, so the submission is only verified against
// it, updating the profile if a discrepancy is found.
func (a *AppProfiler) ParseDAG(j *dag.Job) {
	a.observed.AddJob(j)
	if a.mode == AdHoc {
		a.profile.AddJob(j)
		return
	}
	// Recurring: verify the stored profile agrees with reality for
	// everything observed so far. A prefix mismatch means the stored
	// profile is stale; fall back to the observed references so the
	// manager never acts on wrong data, and count the discrepancy.
	for _, id := range a.observed.RDDs() {
		obs := a.observed.Reads(id)
		stored := a.profile.Reads(id)
		if len(stored) < len(obs) {
			a.discrepancies++
			a.profile = mergeProfiles(a.profile, a.observed)
			return
		}
		for i := range obs {
			if stored[i] != obs[i] {
				a.discrepancies++
				a.profile = mergeProfiles(a.profile, a.observed)
				return
			}
		}
	}
}

// mergeProfiles overlays observed references onto a stored profile:
// observed data wins for any RDD it covers, stored data fills in the
// future the observation has not reached yet.
func mergeProfiles(stored, observed *refdist.Profile) *refdist.Profile {
	sd := stored.Data()
	od := observed.Data()
	for id, reads := range od.Reads {
		if len(reads) > len(sd.Reads[id]) {
			sd.Reads[id] = reads
		} else {
			merged := make([]refdist.Ref, len(reads))
			copy(merged, reads)
			sd.Reads[id] = append(merged, sd.Reads[id][len(reads):]...)
		}
	}
	for id, c := range od.Creation {
		sd.Creation[id] = c
	}
	return refdist.FromData(sd)
}
