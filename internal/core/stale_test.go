package core

import (
	"testing"

	"mrdspark/internal/refdist"
)

func TestStaleTableFallsBackToRecency(t *testing.T) {
	g, near, far, dead := testGraph(t)
	m := NewManager(g, NewRecurringProfiler(refdist.FromGraph(g)),
		Options{ReissueDelayStages: 1})
	mon := m.NewNodePolicy(0).(*CacheMonitor)
	m.OnStageStart(1, 1)

	// Healthy: distance eviction picks the infinite-distance block even
	// when it is the most recently used.
	mon.OnAdd(near.Block(0))
	mon.OnAdd(dead.Block(0))
	mon.OnAccess(dead.Block(0)) // near is LRU
	if v, _ := mon.Victim(all); v != dead.Block(0) {
		t.Fatalf("healthy victim = %v, want infinite-distance dead", v)
	}

	// The failure resets the monitor; the re-issued table is in flight
	// for one stage, during which the replacement must fall back to
	// recency instead of trusting distances it does not have.
	m.OnNodeFailure(0)
	mon.OnAdd(near.Block(0))
	mon.OnAdd(dead.Block(0))
	mon.OnAccess(dead.Block(0)) // near is LRU again
	if v, _ := mon.Victim(all); v != near.Block(0) {
		t.Errorf("stale-window victim = %v, want recency (LRU) choice", v)
	}
	if m.Stats().StaleFallbacks == 0 {
		t.Error("recency fallback not counted")
	}
	// Prefetch arrivals must not evict on stale information either.
	if mon.AllowPrefetchEviction(near.BlockInfo(0), dead.Block(0)) {
		t.Error("prefetch eviction allowed during stale window")
	}

	// The stale window covers exactly one stage: the next one runs
	// stale, the one after is back on distances.
	m.OnStageStart(2, 2)
	if !m.tableStale(0) {
		t.Fatal("window expired one stage early")
	}
	if m.Stats().StaleWindowStages != 1 {
		t.Errorf("StaleWindowStages = %d, want 1", m.Stats().StaleWindowStages)
	}
	m.OnStageStart(3, 3)
	if m.tableStale(0) {
		t.Fatal("window never expired")
	}
	// Distances are trusted again. At stage 3 near and dead are both
	// infinite (no reference after the stage about to read near) while
	// far is still live; make far the LRU block so recency would evict
	// it, and check the distance walk picks an infinite block instead.
	mon.OnAdd(far.Block(0))
	mon.OnAccess(near.Block(0))
	mon.OnAccess(dead.Block(0)) // order: far is LRU, near, dead MRU
	if v, _ := mon.Victim(all); v == far.Block(0) {
		t.Error("post-window victim is the recency choice; distances not restored")
	}
}

func TestStaleWindowIsPerNode(t *testing.T) {
	g, near, _, dead := testGraph(t)
	m := NewManager(g, NewRecurringProfiler(refdist.FromGraph(g)),
		Options{ReissueDelayStages: 2})
	healthy := m.NewNodePolicy(1).(*CacheMonitor)
	m.OnStageStart(1, 1)
	m.OnNodeFailure(0)

	if !m.tableStale(0) {
		t.Error("failed node not stale")
	}
	if m.tableStale(1) {
		t.Error("healthy node marked stale")
	}
	// The healthy node's monitor keeps distance-based eviction.
	healthy.OnAdd(near.Block(1))
	healthy.OnAdd(dead.Block(1))
	healthy.OnAccess(dead.Block(1))
	if v, _ := healthy.Victim(all); v != dead.Block(1) {
		t.Errorf("healthy node victim = %v, want distance choice", v)
	}
}

func TestZeroDelayReissueIsImmediate(t *testing.T) {
	g, _, _, _ := testGraph(t)
	m := NewFull(g)
	m.NewNodePolicy(0)
	m.OnStageStart(1, 1)
	m.OnNodeFailure(0)
	if m.tableStale(0) {
		t.Error("zero-delay reissue left the node stale")
	}
	if m.Stats().TableReissues != 1 {
		t.Errorf("reissues = %d, want 1", m.Stats().TableReissues)
	}
}
