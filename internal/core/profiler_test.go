package core

import (
	"testing"

	"mrdspark/internal/dag"
	"mrdspark/internal/refdist"
)

func TestAdHocProfilerAccumulates(t *testing.T) {
	g, _, _, _ := testGraph(t)
	p := NewAppProfiler()
	if p.Mode() != AdHoc {
		t.Fatalf("mode = %v", p.Mode())
	}
	for _, j := range g.Jobs {
		p.ParseDAG(j)
	}
	if !p.Profile().Equal(refdist.FromGraph(g)) {
		t.Error("ad-hoc profile differs from whole-graph profile after all jobs")
	}
	if !p.Observed().Equal(p.Profile()) {
		t.Error("observed and working profiles must coincide in ad-hoc mode")
	}
	if p.Discrepancies() != 0 {
		t.Errorf("discrepancies = %d", p.Discrepancies())
	}
}

func TestRecurringProfilerNoDiscrepancyOnMatch(t *testing.T) {
	g, _, _, _ := testGraph(t)
	stored := refdist.FromGraph(g)
	p := NewRecurringProfiler(stored)
	if p.Mode() != Recurring {
		t.Fatalf("mode = %v", p.Mode())
	}
	for _, j := range g.Jobs {
		p.ParseDAG(j)
	}
	if p.Discrepancies() != 0 {
		t.Errorf("discrepancies on a faithful rerun = %d", p.Discrepancies())
	}
	if !p.Profile().Equal(stored) {
		t.Error("profile changed despite matching submissions")
	}
}

func TestRecurringProfilerDetectsStaleProfile(t *testing.T) {
	g, near, _, _ := testGraph(t)
	// Store a profile from a graph missing the later jobs: the rerun
	// submits more references than stored.
	partial := refdist.NewProfile()
	partial.AddJob(g.Jobs[0])
	p := NewRecurringProfiler(partial)
	for _, j := range g.Jobs {
		p.ParseDAG(j)
	}
	if p.Discrepancies() == 0 {
		t.Fatal("stale profile not detected")
	}
	// After the merge the profile must cover the observed reads.
	if got, want := len(p.Profile().Reads(near.ID)), len(refdist.FromGraph(g).Reads(near.ID)); got != want {
		t.Errorf("merged reads = %d, want %d", got, want)
	}
}

func TestRecurringProfilerDetectsChangedSchedule(t *testing.T) {
	g, _, _, _ := testGraph(t)
	// Store the profile of a DIFFERENT application shape.
	g2 := dag.New()
	data := g2.Source("other", 4, 1<<20).Map("m").Cache()
	g2.Count(data)
	g2.Count(data.Map("u"))
	stored := refdist.FromGraph(g2)

	p := NewRecurringProfiler(stored)
	for _, j := range g.Jobs {
		p.ParseDAG(j)
	}
	if p.Discrepancies() == 0 {
		t.Error("mismatched application not detected")
	}
}

func TestProfilerResumeAfterPartialRun(t *testing.T) {
	// First run dies after two jobs; the observed partial profile is
	// stored and the second run resumes from it (§4.4).
	g, _, _, _ := testGraph(t)
	first := NewAppProfiler()
	first.ParseDAG(g.Jobs[0])
	first.ParseDAG(g.Jobs[1])
	stored := refdist.FromData(first.Observed().Data())

	second := NewRecurringProfiler(stored)
	for _, j := range g.Jobs {
		second.ParseDAG(j)
	}
	// The stored prefix was correct but incomplete: treated as a
	// discrepancy and extended with reality.
	if !second.Profile().Equal(refdist.FromGraph(g)) {
		t.Error("resumed profile incomplete")
	}
}

func TestModeAndMetricStrings(t *testing.T) {
	if AdHoc.String() != "ad-hoc" || Recurring.String() != "recurring" {
		t.Error("mode strings wrong")
	}
	if StageDistance.String() != "stage" || JobDistance.String() != "job" {
		t.Error("metric strings wrong")
	}
}
