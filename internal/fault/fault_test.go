package fault

import (
	"strings"
	"testing"

	"mrdspark/internal/block"
)

func TestValidateAcceptsNilAndZero(t *testing.T) {
	var s *Schedule
	if err := s.Validate(4); err != nil {
		t.Errorf("nil schedule: %v", err)
	}
	if err := (&Schedule{}).Validate(4); err != nil {
		t.Errorf("zero schedule: %v", err)
	}
	if !s.Empty() || !(&Schedule{}).Empty() {
		t.Error("nil/zero schedules should be Empty")
	}
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
	}{
		{"rate>=1", Schedule{FetchFailureRate: 1.0}},
		{"rate<0", Schedule{FetchFailureRate: -0.1}},
		{"negative retries", Schedule{MaxFetchRetries: -1}},
		{"negative backoff", Schedule{RetryBackoffUs: -5}},
		{"replication>nodes", Schedule{Replication: 5}},
		{"crash node out of range", Schedule{Events: []Event{{Kind: NodeCrash, Node: 4}}}},
		{"negative stage", Schedule{Events: []Event{{Kind: NodeCrash, Stage: -1}}}},
		{"negative rejoin", Schedule{Events: []Event{{Kind: NodeCrash, RejoinAfter: -1}}}},
		{"straggler factor<1", Schedule{Events: []Event{{Kind: Straggler, DiskFactor: 0.5, NetFactor: 1, Duration: 1}}}},
		{"straggler duration<1", Schedule{Events: []Event{{Kind: Straggler, DiskFactor: 2, NetFactor: 2}}}},
		{"unknown kind", Schedule{Events: []Event{{Kind: Kind(99)}}}},
	}
	for _, c := range cases {
		if err := c.s.Validate(4); err == nil {
			t.Errorf("%s: Validate accepted invalid schedule", c.name)
		}
	}
}

func TestCrashMatchesLegacyPair(t *testing.T) {
	s := Crash(2, 7)
	if err := s.Validate(4); err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 1 {
		t.Fatalf("Crash built %d events", len(s.Events))
	}
	e := s.Events[0]
	if e.Kind != NodeCrash || e.Node != 2 || e.Stage != 7 || e.RejoinAfter != 0 {
		t.Errorf("Crash event = %+v", e)
	}
	if s.Empty() {
		t.Error("crash schedule reported Empty")
	}
}

func TestNormalizedAccessorsAreNilSafe(t *testing.T) {
	var s *Schedule
	if s.ReplicationFactor() != 1 {
		t.Errorf("nil ReplicationFactor = %d", s.ReplicationFactor())
	}
	if s.Retries() != DefaultFetchRetries {
		t.Errorf("nil Retries = %d", s.Retries())
	}
	if s.Backoff() != DefaultRetryBackoffUs {
		t.Errorf("nil Backoff = %d", s.Backoff())
	}
	full := &Schedule{Replication: 3, MaxFetchRetries: 5, RetryBackoffUs: 250}
	if full.ReplicationFactor() != 3 || full.Retries() != 5 || full.Backoff() != 250 {
		t.Errorf("explicit accessors = %d/%d/%d",
			full.ReplicationFactor(), full.Retries(), full.Backoff())
	}
}

func TestRNGDeterministicAndSeedSensitive(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	c, d := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("distinct seeds produced %d identical draws", same)
	}
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestPresetsValidateOnRealisticShapes(t *testing.T) {
	for _, name := range PresetNames() {
		for _, shape := range []struct{ nodes, stages int }{{2, 3}, {4, 10}, {25, 60}} {
			s, err := Preset(name, shape.nodes, shape.stages)
			if err != nil {
				t.Errorf("%s on %d nodes/%d stages: %v", name, shape.nodes, shape.stages, err)
				continue
			}
			for _, e := range s.Events {
				if e.Stage < 1 || e.Stage >= shape.stages {
					t.Errorf("%s: event %s outside firable range [1,%d)", name, e, shape.stages)
				}
			}
		}
	}
	if _, err := Preset("no-such-preset", 4, 10); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := Preset("crash", 0, 10); err == nil {
		t.Error("zero-node preset accepted")
	}
}

func TestEventStringsAreDescriptive(t *testing.T) {
	ev := Event{Stage: 5, Kind: NodeCrash, Node: 2, RejoinAfter: 3}
	if s := ev.String(); !strings.Contains(s, "rejoin+3") {
		t.Errorf("crash-rejoin string %q lacks rejoin window", s)
	}
	ev = Event{Stage: 1, Kind: LoseBlock, Block: block.ID{RDD: 4, Partition: 2}}
	if s := ev.String(); !strings.Contains(s, "lose-block") {
		t.Errorf("lose-block string %q lacks kind", s)
	}
}
