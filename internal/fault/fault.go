// Package fault describes deterministic, seeded fault-injection
// schedules for the cluster simulator: node crashes (with optional
// rejoin), transient stragglers, individual block loss or corruption,
// and probabilistic remote-fetch failures with bounded retry. A
// Schedule is pure data — the simulator interprets it — so the same
// schedule and seed replay bit-for-bit across runs, which is what lets
// the chaos experiments compare policies under identical fault
// sequences.
package fault

import (
	"fmt"

	"mrdspark/internal/block"
)

// Kind discriminates fault events.
type Kind int

const (
	// NodeCrash wipes a node's memory, local disk and policy state
	// just before the event's stage. With RejoinAfter > 0 the node
	// stays down (no tasks, no inserts) for that many executed stages
	// and then rejoins empty; with RejoinAfter == 0 it is replaced
	// immediately by a fresh empty node, the seed repo's old behaviour.
	NodeCrash Kind = iota
	// Straggler multiplies a node's disk and NIC service times by
	// DiskFactor/NetFactor for Duration executed stages — a transient
	// slow disk or congested link, not a failure.
	Straggler
	// LoseBlock drops one block's primary copies (home-node memory and
	// disk). Surviving replicas on other nodes are untouched, so the
	// event distinguishes the replica-refetch path from full lineage
	// recomputation.
	LoseBlock
	// CorruptBlock rots the block's home-node *disk* copy: the bytes
	// stay "present" until the next demand read detects the corruption,
	// drops the copy, and falls back to replica or lineage. The
	// in-memory copy is unaffected until evicted.
	CorruptBlock
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case NodeCrash:
		return "node-crash"
	case Straggler:
		return "straggler"
	case LoseBlock:
		return "lose-block"
	case CorruptBlock:
		return "corrupt-block"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault. Stage is the executed-stage index
// (0-based, in execution order, the same counter the old FailAtStage
// used); the event fires just before that stage starts.
type Event struct {
	Stage int
	Kind  Kind
	// Node targets NodeCrash and Straggler events.
	Node int
	// RejoinAfter (NodeCrash) is the number of executed stages the node
	// stays down before rejoining empty; 0 means immediate replacement.
	RejoinAfter int
	// DiskFactor and NetFactor (Straggler) multiply device service
	// times; both must be >= 1.
	DiskFactor float64
	NetFactor  float64
	// Duration (Straggler) is the window length in executed stages.
	Duration int
	// Block targets LoseBlock and CorruptBlock events.
	Block block.ID
}

// String renders the event for warnings and logs.
func (e Event) String() string {
	switch e.Kind {
	case NodeCrash:
		if e.RejoinAfter > 0 {
			return fmt.Sprintf("%s(node=%d,stage=%d,rejoin+%d)", e.Kind, e.Node, e.Stage, e.RejoinAfter)
		}
		return fmt.Sprintf("%s(node=%d,stage=%d)", e.Kind, e.Node, e.Stage)
	case Straggler:
		return fmt.Sprintf("%s(node=%d,stage=%d,disk×%.1f,net×%.1f,%d stages)",
			e.Kind, e.Node, e.Stage, e.DiskFactor, e.NetFactor, e.Duration)
	default:
		return fmt.Sprintf("%s(%s,stage=%d)", e.Kind, e.Block, e.Stage)
	}
}

// Schedule is a full fault-injection plan for one run. The zero value
// (and a nil *Schedule) injects nothing. All randomness — only the
// remote-fetch failure draws — comes from a splitmix64 stream seeded
// with Seed, so equal schedules replay identically.
type Schedule struct {
	// Seed initializes the fetch-failure RNG stream.
	Seed int64
	// Events fire in stage order; same-stage events fire in slice order.
	Events []Event
	// Replication is the copy count for cached and shuffle blocks.
	// 1 (or 0, normalized to 1) means no replication; R > 1 writes
	// R-1 replica copies onto the next nodes' disks, so a lost primary
	// can be re-fetched instead of recomputed from lineage.
	Replication int
	// FetchFailureRate is the probability in [0,1) that one remote
	// block fetch attempt fails transiently and must be retried.
	FetchFailureRate float64
	// MaxFetchRetries bounds the retries after a first failed attempt;
	// 0 means DefaultFetchRetries. Exhausting the budget escalates the
	// read to lineage recomputation, charged to the run.
	MaxFetchRetries int
	// RetryBackoffUs is the base exponential backoff in simulated
	// microseconds (attempt k waits RetryBackoffUs << k); 0 means
	// DefaultRetryBackoffUs.
	RetryBackoffUs int64
}

// Defaults for the retry model, applied when the schedule leaves the
// fields zero.
const (
	DefaultFetchRetries   = 3
	DefaultRetryBackoffUs = 1000 // 1 ms base, doubling per attempt
)

// ReplicationFactor returns the normalized replication factor (>= 1).
// It is nil-safe so the simulator can call it on an absent schedule.
func (s *Schedule) ReplicationFactor() int {
	if s == nil || s.Replication < 1 {
		return 1
	}
	return s.Replication
}

// Retries returns the normalized retry budget.
func (s *Schedule) Retries() int {
	if s == nil || s.MaxFetchRetries <= 0 {
		return DefaultFetchRetries
	}
	return s.MaxFetchRetries
}

// Backoff returns the normalized base backoff in microseconds.
func (s *Schedule) Backoff() int64 {
	if s == nil || s.RetryBackoffUs <= 0 {
		return DefaultRetryBackoffUs
	}
	return s.RetryBackoffUs
}

// Empty reports whether the schedule injects nothing at all.
func (s *Schedule) Empty() bool {
	return s == nil || (len(s.Events) == 0 && s.FetchFailureRate == 0 && s.ReplicationFactor() == 1)
}

// Validate checks the schedule against a cluster of the given size and
// returns the first structural error. Whether every event actually
// fires depends on the executed stage count, which is only known after
// the run; the simulator records unfired events as a warning in the
// run's metrics instead.
func (s *Schedule) Validate(nodes int) error {
	if s == nil {
		return nil
	}
	if s.FetchFailureRate < 0 || s.FetchFailureRate >= 1 {
		return fmt.Errorf("fault: FetchFailureRate %v outside [0,1)", s.FetchFailureRate)
	}
	if s.MaxFetchRetries < 0 {
		return fmt.Errorf("fault: negative MaxFetchRetries %d", s.MaxFetchRetries)
	}
	if s.RetryBackoffUs < 0 {
		return fmt.Errorf("fault: negative RetryBackoffUs %d", s.RetryBackoffUs)
	}
	if s.Replication < 0 || s.Replication > nodes {
		return fmt.Errorf("fault: replication factor %d outside [1,%d nodes]", s.Replication, nodes)
	}
	for i, e := range s.Events {
		if e.Stage < 0 {
			return fmt.Errorf("fault: event %d (%s): negative stage", i, e)
		}
		switch e.Kind {
		case NodeCrash:
			if e.Node < 0 || e.Node >= nodes {
				return fmt.Errorf("fault: event %d (%s): node outside [0,%d)", i, e, nodes)
			}
			if e.RejoinAfter < 0 {
				return fmt.Errorf("fault: event %d (%s): negative RejoinAfter", i, e)
			}
		case Straggler:
			if e.Node < 0 || e.Node >= nodes {
				return fmt.Errorf("fault: event %d (%s): node outside [0,%d)", i, e, nodes)
			}
			if e.DiskFactor < 1 || e.NetFactor < 1 {
				return fmt.Errorf("fault: event %d (%s): slowdown factors must be >= 1", i, e)
			}
			if e.Duration < 1 {
				return fmt.Errorf("fault: event %d (%s): duration must be >= 1 stage", i, e)
			}
		case LoseBlock, CorruptBlock:
			// Block validity against the DAG is the simulator's call;
			// an absent block is a no-op event, not an error.
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Crash returns the minimal schedule the old FailNode/FailAtStage pair
// expressed: one permanent crash of the node before the given executed
// stage.
func Crash(node, stage int) *Schedule {
	return &Schedule{Events: []Event{{Stage: stage, Kind: NodeCrash, Node: node}}}
}

// RNG is a splitmix64 stream: tiny, seedable, and stable across Go
// releases (math/rand's stream is not guaranteed), which keeps fault
// replays byte-identical forever.
type RNG struct {
	state uint64
}

// NewRNG seeds a stream. Distinct seeds give independent streams.
func NewRNG(seed int64) *RNG {
	return &RNG{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
