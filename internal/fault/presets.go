package fault

import (
	"fmt"
	"sort"
)

// Presets are named chaos schedules scaled to a cluster (node count)
// and an application (planned executed-stage count), so the same
// preset name stresses a 3-stage toy DAG and a 60-stage SVD++ run at
// the same relative points. All presets use Seed 42 by default;
// callers may override any field afterwards.

// presetBuilders maps preset names to constructors.
var presetBuilders = map[string]func(nodes, stages int) *Schedule{
	"healthy": func(nodes, stages int) *Schedule {
		return &Schedule{Seed: 42}
	},
	// crash: one permanent node loss at the halfway mark — the paper's
	// §4.4 scenario, previously the only fault the simulator knew.
	"crash": func(nodes, stages int) *Schedule {
		return &Schedule{Seed: 42, Events: []Event{
			{Stage: at(stages, 0.5), Kind: NodeCrash, Node: 1 % nodes},
		}}
	},
	// crash-rejoin: the node comes back empty after a few stages, so
	// the run sees both the down window and the re-warm.
	"crash-rejoin": func(nodes, stages int) *Schedule {
		return &Schedule{Seed: 42, Events: []Event{
			{Stage: at(stages, 0.4), Kind: NodeCrash, Node: 1 % nodes,
				RejoinAfter: span(stages, 0.15, 2)},
		}}
	},
	// rolling: two different nodes lost at the 1/3 and 2/3 marks —
	// the multi-failure case a single FailNode could never express.
	"rolling": func(nodes, stages int) *Schedule {
		second := 2 % nodes
		return &Schedule{Seed: 42, Events: []Event{
			{Stage: at(stages, 0.33), Kind: NodeCrash, Node: 1 % nodes},
			{Stage: at(stages, 0.66), Kind: NodeCrash, Node: second},
		}}
	},
	// stragglers: no data loss, but one node's disk and another's NIC
	// degrade for a window — stresses the prefetcher's background I/O.
	"stragglers": func(nodes, stages int) *Schedule {
		return &Schedule{Seed: 42, Events: []Event{
			{Stage: at(stages, 0.25), Kind: Straggler, Node: 0,
				DiskFactor: 4, NetFactor: 1, Duration: span(stages, 0.25, 2)},
			{Stage: at(stages, 0.5), Kind: Straggler, Node: 1 % nodes,
				DiskFactor: 1, NetFactor: 4, Duration: span(stages, 0.25, 2)},
		}}
	},
	// flaky-fetch: every remote fetch fails with 10% probability and
	// retries with exponential backoff; no node ever dies.
	"flaky-fetch": func(nodes, stages int) *Schedule {
		return &Schedule{Seed: 42, FetchFailureRate: 0.1}
	},
	// chaos: the escalation ladder's top rung — a crash-and-rejoin, a
	// second permanent crash, a straggler window and flaky fetches all
	// in one run.
	"chaos": func(nodes, stages int) *Schedule {
		second := 2 % nodes
		return &Schedule{
			Seed:             42,
			FetchFailureRate: 0.05,
			Events: []Event{
				{Stage: at(stages, 0.3), Kind: NodeCrash, Node: 1 % nodes,
					RejoinAfter: span(stages, 0.2, 2)},
				{Stage: at(stages, 0.45), Kind: Straggler, Node: 0,
					DiskFactor: 3, NetFactor: 2, Duration: span(stages, 0.2, 2)},
				{Stage: at(stages, 0.7), Kind: NodeCrash, Node: second},
			},
		}
	},
}

// at converts a fraction of the planned stages to an executed-stage
// index, clamped so the event can actually fire (stage 1..stages-1).
func at(stages int, frac float64) int {
	s := int(float64(stages) * frac)
	if s < 1 {
		s = 1
	}
	if stages > 1 && s >= stages {
		s = stages - 1
	}
	return s
}

// span converts a fraction of the planned stages to a window length
// with a floor.
func span(stages int, frac float64, min int) int {
	s := int(float64(stages) * frac)
	if s < min {
		s = min
	}
	return s
}

// PresetNames lists the available presets, sorted, "healthy" first.
func PresetNames() []string {
	names := make([]string, 0, len(presetBuilders))
	for n := range presetBuilders {
		if n != "healthy" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return append([]string{"healthy"}, names...)
}

// Preset builds a named schedule scaled to the cluster size and the
// application's planned executed-stage count.
func Preset(name string, nodes, stages int) (*Schedule, error) {
	b, ok := presetBuilders[name]
	if !ok {
		return nil, fmt.Errorf("fault: unknown preset %q (have %v)", name, PresetNames())
	}
	if nodes < 1 {
		return nil, fmt.Errorf("fault: preset %q: need at least one node", name)
	}
	if stages < 1 {
		return nil, fmt.Errorf("fault: preset %q: need at least one planned stage", name)
	}
	s := b(nodes, stages)
	if err := s.Validate(nodes); err != nil {
		return nil, fmt.Errorf("fault: preset %q invalid: %w", name, err)
	}
	return s, nil
}
