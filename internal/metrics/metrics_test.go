package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHitRatio(t *testing.T) {
	if r := (Run{}).HitRatio(); r != 0 {
		t.Errorf("empty run hit ratio = %v", r)
	}
	if r := (Run{Hits: 3, Misses: 1}).HitRatio(); r != 0.75 {
		t.Errorf("hit ratio = %v, want 0.75", r)
	}
	if r := (Run{Hits: 0, Misses: 5}).HitRatio(); r != 0 {
		t.Errorf("all-miss hit ratio = %v", r)
	}
}

func TestJCTDuration(t *testing.T) {
	r := Run{JCT: 1_500_000}
	if r.JCTDuration() != 1500*time.Millisecond {
		t.Errorf("JCTDuration = %v", r.JCTDuration())
	}
}

func TestPrefetchAccuracy(t *testing.T) {
	if a := (Run{}).PrefetchAccuracy(); a != 0 {
		t.Errorf("accuracy with no prefetches = %v", a)
	}
	if a := (Run{PrefetchIssued: 4, PrefetchUsed: 3}).PrefetchAccuracy(); a != 0.75 {
		t.Errorf("accuracy = %v", a)
	}
}

func TestNormalize(t *testing.T) {
	base := Run{JCT: 1000, Hits: 5, Misses: 5}
	fast := Run{JCT: 530, Hits: 9, Misses: 1}
	n := Normalize(fast, base)
	if n.JCT != 0.53 {
		t.Errorf("normalized JCT = %v", n.JCT)
	}
	if n.HitRatio != 0.4 {
		t.Errorf("hit delta = %v", n.HitRatio)
	}
	// Zero baseline does not divide by zero.
	if n := Normalize(fast, Run{}); n.JCT != 1 {
		t.Errorf("zero-baseline JCT = %v", n.JCT)
	}
}

func TestAggregate(t *testing.T) {
	runs := []Run{
		{JCT: 100, Hits: 1, Misses: 1, Evictions: 2},
		{JCT: 300, Hits: 3, Misses: 1, Evictions: 4},
	}
	s := Aggregate(runs)
	if s.N != 2 || s.MeanJCT != 200 || s.MinJCT != 100 || s.MaxJCT != 300 {
		t.Errorf("summary = %+v", s)
	}
	if s.MeanHit != (0.5+0.75)/2 {
		t.Errorf("mean hit = %v", s.MeanHit)
	}
	if s.MeanEvicted != 3 {
		t.Errorf("mean evicted = %v", s.MeanEvicted)
	}
}

func TestAggregateEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Aggregate(nil) did not panic")
		}
	}()
	Aggregate(nil)
}

func TestRunString(t *testing.T) {
	r := Run{Workload: "PR", Policy: "MRD", JCT: 1000, Hits: 9, Misses: 1}
	s := r.String()
	for _, want := range []string{"PR", "MRD", "90.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
