// Package metrics defines the measurements a simulated run produces —
// job completion time, cache hit ratio, I/O volumes, eviction and
// prefetch counters — and helpers to aggregate and normalize them the
// way the paper's evaluation reports results.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// Run holds the counters of one simulated application run.
type Run struct {
	Workload string
	Policy   string

	// JCT is the job completion time of the whole application in
	// simulated microseconds (the paper's normalized-JCT numerator).
	JCT int64

	// Cache accounting, counted on cached-RDD block reads only.
	Hits   int64
	Misses int64

	// Miss breakdown: disk promotes read the block back from local
	// disk; recomputes rebuild it from lineage.
	DiskPromotes int64
	Recomputes   int64

	// I/O volumes in bytes.
	DiskReadBytes  int64
	DiskWriteBytes int64
	NetReadBytes   int64

	// Spark-UI-style volumes (Table 3's columns): total bytes entering
	// stages, and shuffle read/write totals.
	StageInputBytes   int64
	ShuffleReadBytes  int64
	ShuffleWriteBytes int64

	// Cache churn.
	Evictions      int64 // demand evictions under memory pressure
	PurgedBlocks   int64 // blocks dropped by cluster-wide purge orders
	PrefetchIssued int64
	PrefetchUsed   int64 // prefetched blocks that were hit before eviction
	PrefetchWasted int64 // prefetched blocks evicted or purged unused

	// PeakCacheUsed is the high-water mark of cluster-wide memory
	// store occupancy, the natural scale for cache-size sweeps.
	PeakCacheUsed int64

	// Fault injection and recovery (internal/fault). All zero on a
	// healthy, unreplicated run.
	NodeCrashes     int64 // node-crash events fired
	NodeRejoins     int64 // crashed nodes that rejoined (empty)
	StragglerEvents int64 // straggler windows opened
	BlocksLost      int64 // fault-injected single-block losses
	BlocksCorrupted int64 // corrupt on-disk copies detected at read
	// Replication: bytes written for replica copies, and misses served
	// by re-fetching a surviving replica instead of recomputing.
	ReplicaWriteBytes int64
	ReplicaHits       int64
	// Remote-fetch retry model: transient failures retried with
	// backoff, and fetches abandoned after the retry budget (each
	// abandoned fetch escalates to lineage recomputation).
	FetchRetries int64
	FetchGiveUps int64
	// RecomputeBytes is the total block bytes rebuilt from lineage —
	// the recovery work a fault schedule forces onto the run.
	RecomputeBytes int64
	// FaultWarning records schedule anomalies — today, events whose
	// stage index lies beyond the executed stage count and therefore
	// never fired. Empty on a clean replay. A string (not a slice)
	// keeps Run comparable with ==.
	FaultWarning string

	// Device utilization: total busy microseconds summed across every
	// node's disk and NIC, over the run's full wall time (WallTime ≥
	// JCT: background write-behind and prefetch I/O may still drain
	// after the last job completes).
	DiskBusy int64
	NetBusy  int64
	WallTime int64

	// Workflow shape.
	Jobs           int
	StagesExecuted int
	StagesSkipped  int
	TasksExecuted  int64
}

// HitRatio returns hits / (hits + misses), or 0 for a run with no
// cached-block reads.
func (r Run) HitRatio() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// JCTDuration returns the job completion time as a time.Duration.
func (r Run) JCTDuration() time.Duration { return time.Duration(r.JCT) * time.Microsecond }

// PrefetchAccuracy returns the fraction of issued prefetches that were
// used before being evicted.
func (r Run) PrefetchAccuracy() float64 {
	if r.PrefetchIssued == 0 {
		return 0
	}
	return float64(r.PrefetchUsed) / float64(r.PrefetchIssued)
}

// String renders a one-line summary.
func (r Run) String() string {
	return fmt.Sprintf("%s/%s: JCT=%v hit=%.1f%% (hits=%d misses=%d) evict=%d prefetch=%d/%d",
		r.Workload, r.Policy, r.JCTDuration(), 100*r.HitRatio(),
		r.Hits, r.Misses, r.Evictions, r.PrefetchUsed, r.PrefetchIssued)
}

// StageSpan is one executed stage's slice of the run timeline. Spans
// are kept out of Run so Run stays comparable; the simulator returns
// them separately.
type StageSpan struct {
	StageID int
	JobID   int
	Kind    string // "shuffleMap" or "result"
	Tasks   int
	Start   int64 // µs
	End     int64 // µs
}

// Duration returns the span length as a time.Duration.
func (s StageSpan) Duration() time.Duration {
	return time.Duration(s.End-s.Start) * time.Microsecond
}

// Normalized compares a run to a baseline run of the same workload:
// values below 1 mean the run beat the baseline.
type Normalized struct {
	JCT      float64 // run JCT / baseline JCT
	HitRatio float64 // absolute hit-ratio difference (run - baseline)
}

// Normalize computes run-vs-baseline comparison values.
func Normalize(run, baseline Run) Normalized {
	n := Normalized{JCT: 1, HitRatio: run.HitRatio() - baseline.HitRatio()}
	if baseline.JCT > 0 {
		n.JCT = float64(run.JCT) / float64(baseline.JCT)
	}
	return n
}

// Summary aggregates repeated runs of the same configuration.
type Summary struct {
	N           int
	MeanJCT     float64
	MinJCT      int64
	MaxJCT      int64
	MeanHit     float64
	MeanEvicted float64
	// StdDevJCT is the population standard deviation of the JCTs —
	// min/max alone hide how tightly the seeds cluster.
	StdDevJCT float64
	// MeanPrefetchAcc averages each run's prefetch accuracy (used /
	// issued) over the runs that issued prefetches; zero when none did.
	// Runs without prefetches say nothing about accuracy — folding
	// them in as zeros deflated the mean for policies that prefetch
	// only under some seeds.
	MeanPrefetchAcc float64
}

// Aggregate summarizes a set of runs. It panics on an empty slice:
// aggregating nothing is a caller bug.
func Aggregate(runs []Run) Summary {
	if len(runs) == 0 {
		panic("metrics: Aggregate of zero runs")
	}
	s := Summary{N: len(runs), MinJCT: runs[0].JCT, MaxJCT: runs[0].JCT}
	var jct, hit, ev, acc float64
	prefetchers := 0
	for _, r := range runs {
		jct += float64(r.JCT)
		hit += r.HitRatio()
		ev += float64(r.Evictions)
		if r.PrefetchIssued > 0 {
			acc += r.PrefetchAccuracy()
			prefetchers++
		}
		if r.JCT < s.MinJCT {
			s.MinJCT = r.JCT
		}
		if r.JCT > s.MaxJCT {
			s.MaxJCT = r.JCT
		}
	}
	s.MeanJCT = jct / float64(s.N)
	s.MeanHit = hit / float64(s.N)
	s.MeanEvicted = ev / float64(s.N)
	if prefetchers > 0 {
		s.MeanPrefetchAcc = acc / float64(prefetchers)
	}
	var ss float64
	for _, r := range runs {
		d := float64(r.JCT) - s.MeanJCT
		ss += d * d
	}
	s.StdDevJCT = math.Sqrt(ss / float64(s.N))
	return s
}

// String renders the summary on one line, the way sweep tables quote
// repeated-run results.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d JCT mean=%v σ=%v [min=%v max=%v] hit=%.1f%% evict=%.1f pf-acc=%.0f%%",
		s.N,
		time.Duration(s.MeanJCT)*time.Microsecond,
		time.Duration(s.StdDevJCT)*time.Microsecond,
		time.Duration(s.MinJCT)*time.Microsecond,
		time.Duration(s.MaxJCT)*time.Microsecond,
		100*s.MeanHit, s.MeanEvicted, 100*s.MeanPrefetchAcc)
}
