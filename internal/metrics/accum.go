package metrics

import "fmt"

// Accum is an order-independent, mergeable aggregate over Runs — the
// partition-then-merge form the sweep fabric reduces per-shard row
// tables with. Every field is an exact integer sum (or min/max), so
// Add and Merge are commutative and associative bit-for-bit: a shard
// may accumulate its own rows and merge with its siblings in any
// order, and the result is identical to one sequential pass. Derived
// ratios (means, hit rate) are computed only at render time, from the
// merged integers, so no float ever crosses a merge boundary.
type Accum struct {
	N int64 `json:"n"`

	SumJCT int64 `json:"sumJct"`
	MinJCT int64 `json:"minJct"`
	MaxJCT int64 `json:"maxJct"`

	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Evictions      int64 `json:"evictions"`
	PrefetchIssued int64 `json:"prefetchIssued"`
	PrefetchUsed   int64 `json:"prefetchUsed"`
	Recomputes     int64 `json:"recomputes"`

	DiskReadBytes  int64 `json:"diskReadBytes"`
	NetReadBytes   int64 `json:"netReadBytes"`
	RecomputeBytes int64 `json:"recomputeBytes"`
}

// Add folds one run into the accumulator.
func (a *Accum) Add(r Run) {
	if a.N == 0 || r.JCT < a.MinJCT {
		a.MinJCT = r.JCT
	}
	if a.N == 0 || r.JCT > a.MaxJCT {
		a.MaxJCT = r.JCT
	}
	a.N++
	a.SumJCT += r.JCT
	a.Hits += r.Hits
	a.Misses += r.Misses
	a.Evictions += r.Evictions
	a.PrefetchIssued += r.PrefetchIssued
	a.PrefetchUsed += r.PrefetchUsed
	a.Recomputes += r.Recomputes
	a.DiskReadBytes += r.DiskReadBytes
	a.NetReadBytes += r.NetReadBytes
	a.RecomputeBytes += r.RecomputeBytes
}

// Merge folds another accumulator in. Merging a zero Accum is the
// identity.
func (a *Accum) Merge(b Accum) {
	if b.N == 0 {
		return
	}
	if a.N == 0 || b.MinJCT < a.MinJCT {
		a.MinJCT = b.MinJCT
	}
	if a.N == 0 || b.MaxJCT > a.MaxJCT {
		a.MaxJCT = b.MaxJCT
	}
	a.N += b.N
	a.SumJCT += b.SumJCT
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Evictions += b.Evictions
	a.PrefetchIssued += b.PrefetchIssued
	a.PrefetchUsed += b.PrefetchUsed
	a.Recomputes += b.Recomputes
	a.DiskReadBytes += b.DiskReadBytes
	a.NetReadBytes += b.NetReadBytes
	a.RecomputeBytes += b.RecomputeBytes
}

// MeanJCT returns the mean job completion time in simulated
// microseconds, or 0 for an empty accumulator.
func (a Accum) MeanJCT() float64 {
	if a.N == 0 {
		return 0
	}
	return float64(a.SumJCT) / float64(a.N)
}

// HitRatio returns the pooled cache hit ratio (total hits over total
// cached-block reads), or 0 with no reads.
func (a Accum) HitRatio() float64 {
	total := a.Hits + a.Misses
	if total == 0 {
		return 0
	}
	return float64(a.Hits) / float64(total)
}

// PrefetchAccuracy returns the pooled used/issued prefetch ratio, or 0
// when nothing was prefetched.
func (a Accum) PrefetchAccuracy() float64 {
	if a.PrefetchIssued == 0 {
		return 0
	}
	return float64(a.PrefetchUsed) / float64(a.PrefetchIssued)
}

// String renders the accumulator on one line.
func (a Accum) String() string {
	return fmt.Sprintf("n=%d meanJCT=%.0fµs hit=%.1f%% evict=%d prefetch=%d/%d",
		a.N, a.MeanJCT(), 100*a.HitRatio(), a.Evictions, a.PrefetchUsed, a.PrefetchIssued)
}
