package metrics

// Per-stage and per-node statistics, the Spark-UI-style breakdown the
// observability layer (internal/obs) aggregates from the event stream.
// Where Run holds flat end-of-run totals, these attribute the same
// counters to the stage that was executing — or the node that acted —
// when each event fired.

// StageStats is one executed stage's slice of the run's cache and I/O
// activity. Background events (prefetch arrivals, write-behind) that
// land while the stage executes are attributed to it, matching how
// Spark's UI charges concurrent work to the running stage.
type StageStats struct {
	StageID int
	JobID   int
	Kind    string // "shuffleMap" or "result"
	Tasks   int

	StartUs int64 // stage-start simulated time, µs
	EndUs   int64 // stage-end simulated time, µs

	Hits         int64
	Misses       int64
	DiskPromotes int64
	Recomputes   int64
	Inserts      int64
	Evictions    int64 // demand evictions under memory pressure
	Purged       int64 // blocks dropped by cluster-wide purge orders

	PrefetchIssued int64
	PrefetchUsed   int64 // prefetched blocks first hit during this stage
	PrefetchWasted int64 // prefetched blocks evicted/purged unused during this stage

	FetchRetries int64
	FetchGiveUps int64

	// BytesMoved sums the byte sizes of every block event in the stage
	// (inserts, promotes, prefetches, replica traffic) — the stage's
	// cache-driven data movement.
	BytesMoved int64
}

// DurationUs returns the stage's wall time in simulated microseconds.
func (s StageStats) DurationUs() int64 { return s.EndUs - s.StartUs }

// NodeStats is one worker's event-derived view of the run: what the
// node's cache did, how much data it moved, and how busy its devices
// were. (The simulator's end-of-run store occupancy lives in
// sim.NodeStats; this type is the streaming, per-event counterpart.)
type NodeStats struct {
	Node int

	Hits         int64
	Misses       int64
	DiskPromotes int64
	Recomputes   int64
	Inserts      int64
	Evictions    int64
	Purged       int64

	PrefetchIssued int64
	PrefetchUsed   int64
	PrefetchWasted int64

	Tasks      int64 // tasks executed on the node
	BytesMoved int64

	Crashes    int64
	Stragglers int64

	// Device busy time, filled in from the simulator's device queues
	// when the run completes (events do not carry utilization).
	DiskBusyUs int64
	NetBusyUs  int64
}

// NodeStageSpan is one node's activity window within one stage: the
// first task start to the last task end of the tasks the node ran for
// that stage. The HTML report's per-node lanes render these.
type NodeStageSpan struct {
	Node    int
	StageID int
	JobID   int
	StartUs int64
	EndUs   int64
	Tasks   int
}
