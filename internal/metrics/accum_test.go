package metrics

import "testing"

// accumRuns is a fixed set of runs with deliberately awkward values:
// a negative-free spread of JCTs with min and max away from the ends,
// and zero-valued prefetch fields on some runs.
func accumRuns() []Run {
	return []Run{
		{JCT: 500, Hits: 10, Misses: 5, Evictions: 2, PrefetchIssued: 4, PrefetchUsed: 3, Recomputes: 1, DiskReadBytes: 100, NetReadBytes: 10, RecomputeBytes: 7},
		{JCT: 100, Hits: 3, Misses: 9, Evictions: 0, Recomputes: 4, DiskReadBytes: 50},
		{JCT: 900, Hits: 0, Misses: 0, Evictions: 11, PrefetchIssued: 2, NetReadBytes: 33},
		{JCT: 300, Hits: 7, Misses: 1, PrefetchIssued: 1, PrefetchUsed: 1, RecomputeBytes: 12},
		{JCT: 700, Hits: 2, Misses: 2, Evictions: 5, Recomputes: 2, DiskReadBytes: 8, NetReadBytes: 8, RecomputeBytes: 8},
	}
}

// TestAccumMergeOrderIndependent pins the fabric's reduction contract:
// any partition of the runs into sub-accumulators, merged in any
// order, equals the sequential fold.
func TestAccumMergeOrderIndependent(t *testing.T) {
	runs := accumRuns()

	var want Accum
	for _, r := range runs {
		want.Add(r)
	}

	// Every split point, merged both left-into-right and
	// right-into-left.
	for cut := 0; cut <= len(runs); cut++ {
		var left, right Accum
		for _, r := range runs[:cut] {
			left.Add(r)
		}
		for _, r := range runs[cut:] {
			right.Add(r)
		}

		lr := left
		lr.Merge(right)
		if lr != want {
			t.Fatalf("cut=%d left.Merge(right) = %+v, want %+v", cut, lr, want)
		}
		rl := right
		rl.Merge(left)
		if rl != want {
			t.Fatalf("cut=%d right.Merge(left) = %+v, want %+v", cut, rl, want)
		}
	}

	// Three-way, merged in a scrambled order.
	var a, b, c Accum
	a.Add(runs[3])
	b.Add(runs[0])
	b.Add(runs[4])
	c.Add(runs[1])
	c.Add(runs[2])
	c.Merge(a)
	c.Merge(b)
	if c != want {
		t.Fatalf("scrambled three-way merge = %+v, want %+v", c, want)
	}
}

func TestAccumMinMax(t *testing.T) {
	var a Accum
	for _, r := range accumRuns() {
		a.Add(r)
	}
	if a.MinJCT != 100 || a.MaxJCT != 900 {
		t.Fatalf("min/max = %d/%d, want 100/900", a.MinJCT, a.MaxJCT)
	}
	if a.N != 5 || a.SumJCT != 2500 {
		t.Fatalf("n/sum = %d/%d, want 5/2500", a.N, a.SumJCT)
	}
	if got := a.MeanJCT(); got != 500 {
		t.Fatalf("mean = %v, want 500", got)
	}
}

func TestAccumZeroIdentity(t *testing.T) {
	var filled Accum
	filled.Add(accumRuns()[0])
	before := filled

	filled.Merge(Accum{})
	if filled != before {
		t.Fatalf("merging a zero Accum changed the receiver: %+v vs %+v", filled, before)
	}

	var zero Accum
	zero.Merge(before)
	if zero != before {
		t.Fatalf("merging into a zero Accum lost data: %+v vs %+v", zero, before)
	}

	// Zero-value derived ratios must not divide by zero.
	var empty Accum
	if empty.MeanJCT() != 0 || empty.HitRatio() != 0 || empty.PrefetchAccuracy() != 0 {
		t.Fatal("empty accumulator ratios must be 0")
	}
}
