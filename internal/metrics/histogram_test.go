package metrics

import (
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram("d", "stages", []int64{1, 2, 5, 10})
	for _, v := range []int64{0, 1, 1, 2, 3, 5, 6, 10, 11, 1000} {
		h.Observe(v)
	}
	wantCounts := []int64{3, 1, 2, 2} // <=1: {0,1,1}; <=2: {2}; <=5: {3,5}; <=10: {6,10}
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], want)
		}
	}
	if h.Overflow != 2 {
		t.Errorf("overflow = %d, want 2 (11 and 1000)", h.Overflow)
	}
	if h.Count != 10 || h.Min != 0 || h.Max != 1000 {
		t.Errorf("count/min/max = %d/%d/%d, want 10/0/1000", h.Count, h.Min, h.Max)
	}
	if h.Sum != 0+1+1+2+3+5+6+10+11+1000 {
		t.Errorf("sum = %d", h.Sum)
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	// Bounds are inclusive upper bounds: a sample exactly on a bound
	// lands in that bucket, one past it in the next.
	h := NewHistogram("b", "us", []int64{100})
	h.Observe(100)
	h.Observe(101)
	if h.Counts[0] != 1 || h.Overflow != 1 {
		t.Errorf("bucket=%d overflow=%d, want 1/1", h.Counts[0], h.Overflow)
	}
}

func TestHistogramZeroWidthBucketRejected(t *testing.T) {
	for _, bounds := range [][]int64{
		{1, 1, 2},  // equal adjacent bounds: zero-width bucket
		{5, 3},     // decreasing: negative-width bucket
		{},         // no buckets at all
		{10, 10},   // duplicate
		{0, 1, -1}, // decreasing at the end
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram("bad", "x", bounds)
		}()
	}
}

func TestHistogramNegativeSamplesLandInFirstBucket(t *testing.T) {
	// There is no underflow bucket: anything at or below the first
	// bound — including negative sentinels that slip through — counts
	// in the first bucket rather than disappearing.
	h := NewHistogram("n", "us", []int64{0, 10})
	h.Observe(-5)
	if h.Counts[0] != 1 {
		t.Errorf("negative sample not in first bucket: %v", h.Counts)
	}
	if h.Min != -5 {
		t.Errorf("min = %d, want -5", h.Min)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram("m", "us", []int64{1, 10})
	b := NewHistogram("m", "us", []int64{1, 10})
	a.Observe(1)
	a.Observe(100)
	b.Observe(5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count != 3 || a.Counts[0] != 1 || a.Counts[1] != 1 || a.Overflow != 1 {
		t.Errorf("merged wrong: %+v", a)
	}
	if a.Min != 1 || a.Max != 100 {
		t.Errorf("merged min/max = %d/%d", a.Min, a.Max)
	}
	c := NewHistogram("m", "us", []int64{2, 10})
	if err := a.Merge(c); err == nil {
		t.Error("merge with mismatched bounds did not error")
	}
	d := NewHistogram("m", "us", []int64{1})
	if err := a.Merge(d); err == nil {
		t.Error("merge with fewer bounds did not error")
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	a := NewHistogram("m", "us", []int64{10})
	b := NewHistogram("m", "us", []int64{10})
	b.Observe(7)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Min != 7 || a.Max != 7 || a.Count != 1 {
		t.Errorf("empty-merge min/max/count = %d/%d/%d", a.Min, a.Max, a.Count)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram("lat", "us", []int64{10, 100})
	h.Observe(5)
	h.Observe(500)
	s := h.String()
	for _, want := range []string{"lat (us)", "n=2", "[0..10]: 1", "[>100]: 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestSummaryStdDevAndAccuracy(t *testing.T) {
	runs := []Run{
		{JCT: 100, Hits: 1, PrefetchIssued: 4, PrefetchUsed: 2},
		{JCT: 300, Hits: 1, PrefetchIssued: 2, PrefetchUsed: 2},
	}
	s := Aggregate(runs)
	if s.MeanJCT != 200 {
		t.Errorf("mean = %v", s.MeanJCT)
	}
	if s.StdDevJCT != 100 {
		t.Errorf("stddev = %v, want 100", s.StdDevJCT)
	}
	if s.MeanPrefetchAcc != 0.75 {
		t.Errorf("prefetch accuracy = %v, want 0.75", s.MeanPrefetchAcc)
	}
	if str := s.String(); !strings.Contains(str, "n=2") || !strings.Contains(str, "σ=") {
		t.Errorf("Summary.String() = %q", str)
	}
}

// TestSummaryPrefetchAccIgnoresNonPrefetchingRuns is the regression
// test for the MeanPrefetchAcc bug: the mean divided by all runs, so
// runs that issued no prefetches — which say nothing about accuracy —
// dragged the average down.
func TestSummaryPrefetchAccIgnoresNonPrefetchingRuns(t *testing.T) {
	runs := []Run{
		{JCT: 100, PrefetchIssued: 4, PrefetchUsed: 2}, // accuracy 0.5
		{JCT: 100, PrefetchIssued: 2, PrefetchUsed: 2}, // accuracy 1.0
		{JCT: 100}, // no prefetches: excluded
		{JCT: 100},
	}
	if s := Aggregate(runs); s.MeanPrefetchAcc != 0.75 {
		t.Errorf("accuracy over prefetching runs = %v, want 0.75", s.MeanPrefetchAcc)
	}
	if s := Aggregate([]Run{{JCT: 100}}); s.MeanPrefetchAcc != 0 {
		t.Errorf("accuracy with no prefetching runs = %v, want 0", s.MeanPrefetchAcc)
	}
}
