package metrics

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bucket histogram over int64 samples, the shape
// the observability layer uses for latency- and distance-style
// distributions (eviction reference distance, prefetch lead time,
// remote-fetch latency, recovery time). Buckets are defined by their
// inclusive upper bounds; samples above the last bound land in an
// explicit overflow bucket, so no observation is ever dropped.
//
// The zero value is not usable; construct with NewHistogram. Bounds
// must be strictly increasing — equal or decreasing bounds would make
// some buckets unreachable (zero-width), which NewHistogram rejects.
type Histogram struct {
	Name string // metric-style identifier, e.g. "evict_ref_distance"
	Unit string // unit of the samples, e.g. "stages", "us"

	Bounds   []int64 // inclusive upper bounds, strictly increasing
	Counts   []int64 // one count per bound
	Overflow int64   // samples above the last bound

	Count int64 // total observations
	Sum   int64 // sum of all samples
	Min   int64 // smallest sample (valid when Count > 0)
	Max   int64 // largest sample (valid when Count > 0)
}

// NewHistogram builds a histogram with the given inclusive upper
// bounds. It panics on an empty or non-increasing bound list: a
// zero-width bucket can never be hit, so it is a programming error,
// not data.
func NewHistogram(name, unit string, bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: NewHistogram with no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: NewHistogram %q: bounds not strictly increasing at %d (%d <= %d)",
				name, i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		Name:   name,
		Unit:   unit,
		Bounds: append([]int64(nil), bounds...),
		Counts: make([]int64, len(bounds)),
	}
}

// Observe records one sample. Samples above the last bound count in
// the overflow bucket; there is no underflow — the first bucket covers
// everything at or below its bound.
func (h *Histogram) Observe(v int64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Overflow++
}

// Mean returns the average sample, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Merge folds other into h. The two histograms must share bucket
// bounds; merging mismatched layouts would silently misbin, so it is
// an error instead.
func (h *Histogram) Merge(other *Histogram) error {
	if len(other.Bounds) != len(h.Bounds) {
		return fmt.Errorf("metrics: merging histogram %q: %d bounds vs %d", h.Name, len(other.Bounds), len(h.Bounds))
	}
	for i := range h.Bounds {
		if h.Bounds[i] != other.Bounds[i] {
			return fmt.Errorf("metrics: merging histogram %q: bound %d differs (%d vs %d)", h.Name, i, h.Bounds[i], other.Bounds[i])
		}
	}
	if other.Count > 0 {
		if h.Count == 0 || other.Min < h.Min {
			h.Min = other.Min
		}
		if h.Count == 0 || other.Max > h.Max {
			h.Max = other.Max
		}
	}
	h.Count += other.Count
	h.Sum += other.Sum
	h.Overflow += other.Overflow
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
	return nil
}

// String renders the histogram as an aligned bucket table.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s): n=%d", h.Name, h.Unit, h.Count)
	if h.Count > 0 {
		fmt.Fprintf(&b, " min=%d mean=%.1f max=%d", h.Min, h.Mean(), h.Max)
	}
	b.WriteString("\n")
	lo := int64(0)
	for i, bound := range h.Bounds {
		fmt.Fprintf(&b, "  [%d..%d]: %d\n", lo, bound, h.Counts[i])
		lo = bound + 1
	}
	fmt.Fprintf(&b, "  [>%d]: %d\n", h.Bounds[len(h.Bounds)-1], h.Overflow)
	return b.String()
}
