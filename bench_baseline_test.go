package mrdspark

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
)

// benchBaselineOut, when set, makes TestWriteBenchBaseline run the
// curated tier-1 benchmarks via testing.Benchmark and write their
// ns/op and allocs/op to the given JSON file:
//
//	go test -run TestWriteBenchBaseline -benchbaseline BENCH_baseline.json .
//
// The checked-in BENCH_baseline.json gives future changes a perf
// trajectory to compare against; CI regenerates and uploads its own
// copy per run so regressions are visible on CI hardware too.
var benchBaselineOut = flag.String("benchbaseline", "", "write a benchmark baseline JSON to this path")

// BenchBaseline is the file format of BENCH_baseline.json.
type BenchBaseline struct {
	// GoVersion and MaxProcs identify the environment the numbers were
	// taken on; ns/op is only comparable on similar hardware, allocs/op
	// is comparable everywhere.
	GoVersion string              `json:"go_version"`
	MaxProcs  int                 `json:"max_procs"`
	Command   string              `json:"command"`
	Entries   []BenchBaselineItem `json:"benchmarks"`
}

// BenchBaselineItem records one benchmark's result.
type BenchBaselineItem struct {
	Name     string `json:"name"`
	NsPerOp  int64  `json:"ns_op"`
	AllocsOp int64  `json:"allocs_op"`
	BytesOp  int64  `json:"bytes_op"`
}

// baselineBenchmarks is the curated tier-1 set: the end-to-end
// simulation benchmarks the acceptance criteria quote, plus the
// micro-benchmarks of the hot paths this PR series optimizes.
var baselineBenchmarks = []struct {
	name string
	fn   func(*testing.B)
}{
	{"BenchmarkEngine", BenchmarkEngine},
	{"BenchmarkMRDTableRefresh", BenchmarkMRDTableRefresh},
	{"BenchmarkProfileFromGraph", BenchmarkProfileFromGraph},
	{"BenchmarkBuildLP", BenchmarkBuildLP},
	{"BenchmarkSimulateSCC", BenchmarkSimulateSCC},
	{"BenchmarkSimulateSCCLRU", BenchmarkSimulateSCCLRU},
	{"BenchmarkSimulateSCCObserved", BenchmarkSimulateSCCObserved},
	{"BenchmarkExecSCC", BenchmarkExecSCC},
	{"BenchmarkObsEmitDisabled", BenchmarkObsEmitDisabled},
	{"BenchmarkServiceSession", BenchmarkServiceSession},
	{"BenchmarkServiceSessionWire", BenchmarkServiceSessionWire},
	{"BenchmarkServiceAdviceJSON", BenchmarkServiceAdviceJSON},
	{"BenchmarkServiceAdviceWire", BenchmarkServiceAdviceWire},
	{"BenchmarkServiceAdviceWireBatch", BenchmarkServiceAdviceWireBatch},
	{"BenchmarkServiceStatusUntraced", BenchmarkServiceStatusUntraced},
	{"BenchmarkServiceStatusTraced", BenchmarkServiceStatusTraced},
	{"BenchmarkTraceSpanDisabled", BenchmarkTraceSpanDisabled},
	{"BenchmarkSweepGridCold", BenchmarkSweepGridCold},
	{"BenchmarkSweepGridWarm", BenchmarkSweepGridWarm},
}

func TestWriteBenchBaseline(t *testing.T) {
	if *benchBaselineOut == "" {
		t.Skip("pass -benchbaseline <path> to record a baseline")
	}
	base := BenchBaseline{
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		Command:   "go test -run TestWriteBenchBaseline -benchbaseline BENCH_baseline.json .",
	}
	for _, bb := range baselineBenchmarks {
		r := testing.Benchmark(bb.fn)
		base.Entries = append(base.Entries, BenchBaselineItem{
			Name:     bb.name,
			NsPerOp:  r.NsPerOp(),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		})
		t.Logf("%s: %d ns/op, %d allocs/op", bb.name, r.NsPerOp(), r.AllocsPerOp())
	}
	out, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchBaselineOut, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
