package mrdspark

import (
	"fmt"

	"mrdspark/internal/cluster"
	"mrdspark/internal/experiments"
	"mrdspark/internal/workload"
)

// policySpec maps a Config's policy selection onto the experiment
// suite's PolicySpec so capacity probes can share the suite-wide
// memoized run cache. The mapping mirrors policyBuilders exactly:
// the MRD-* aliases become option toggles on the MRD kind.
func policySpec(cfg Config) (experiments.PolicySpec, error) {
	name := cfg.Policy
	if name == "" {
		name = "MRD"
	}
	if _, ok := policyBuilders[name]; !ok {
		return experiments.PolicySpec{}, fmt.Errorf("mrdspark: unknown policy %q (have %v)", name, Policies())
	}
	spec := experiments.PolicySpec{Kind: name, AdHoc: cfg.AdHoc}
	switch name {
	case "MRD":
		spec.MRD = cfg.MRD
	case "MRD-evict":
		spec.Kind, spec.MRD = "MRD", cfg.MRD
		spec.MRD.DisablePrefetch = true
	case "MRD-prefetch":
		spec.Kind, spec.MRD = "MRD", cfg.MRD
		spec.MRD.DisableEviction = true
	case "MRD-dynamic":
		spec.Kind, spec.MRD = "MRD", cfg.MRD
		spec.MRD.DynamicThreshold = true
	}
	return spec, nil
}

// CacheNeeded finds, by bisection, the smallest per-node cache size at
// which the configured policy reaches the target hit ratio on the
// workload — the capacity-planning use the paper's §5.6 motivates
// ("MRD requires only 0.33 GB [against LRU's 0.88 GB], the equivalent
// of 63% savings in cache space... this is significant as it leads to
// resource and cost savings").
//
// Probes run through the experiment suite's memoized run cache, so a
// repeated plan (or one sharing probe sizes with an experiment sweep)
// replays from cache instead of re-simulating, and the workload is
// generated once per plan rather than once per probe.
//
// It returns the found per-node size and the run at that size. If even
// a cache big enough to hold everything misses the target (some
// workloads' first-touch misses bound the hit ratio), it returns an
// error carrying the best achievable ratio.
func CacheNeeded(cfg Config, targetHit float64) (int64, Result, error) {
	if targetHit <= 0 || targetHit > 1 {
		return 0, Result{}, fmt.Errorf("mrdspark: target hit ratio %v outside (0, 1]", targetHit)
	}
	if cfg.Workload == "" {
		return 0, Result{}, fmt.Errorf("mrdspark: Config.Workload is empty (choose from %v)", Workloads())
	}
	cl := cfg.Cluster
	if cl.Nodes == 0 {
		cl = cluster.Main()
	}
	pspec, err := policySpec(cfg)
	if err != nil {
		return 0, Result{}, err
	}
	spec, err := workload.Build(cfg.Workload, cfg.Params)
	if err != nil {
		return 0, Result{}, err
	}

	runAt := func(perNode int64) (Result, error) {
		return experiments.RunCached(spec, cl.WithCache(perNode), pspec)
	}

	// Establish the bracket: lo = one largest block (the smallest
	// usable store), hi = enough for the whole cached working set.
	var maxBlock, totalCached int64
	for _, r := range spec.Graph.CachedRDDs() {
		if r.PartSize > maxBlock {
			maxBlock = r.PartSize
		}
		totalCached += r.Size()
	}
	if maxBlock == 0 {
		return 0, Result{}, fmt.Errorf("mrdspark: workload %q caches nothing", cfg.Workload)
	}
	lo := maxBlock
	hi := totalCached/int64(cl.Nodes) + 2*maxBlock

	top, err := runAt(hi)
	if err != nil {
		return 0, Result{}, err
	}
	if top.HitRatio() < targetHit {
		return 0, top, fmt.Errorf("mrdspark: target hit %.2f unreachable; best achievable is %.2f (first-touch misses)",
			targetHit, top.HitRatio())
	}
	// Probe the lower endpoint too: bisection shrinks the bracket
	// towards lo but never evaluates it, and when the smallest usable
	// store already satisfies the target it is the answer.
	if bottom, err := runAt(lo); err != nil {
		return 0, Result{}, err
	} else if bottom.HitRatio() >= targetHit {
		return lo, bottom, nil
	}
	best := hi
	bestRun := top
	// Bisect to ~2% resolution. Hit ratio is not perfectly monotone in
	// cache size, so keep the smallest size seen to satisfy the target
	// rather than trusting the final bracket blindly.
	for i := 0; i < 24 && hi-lo > maxBlock/8+1; i++ {
		mid := lo + (hi-lo)/2
		run, err := runAt(mid)
		if err != nil {
			return 0, Result{}, err
		}
		if run.HitRatio() >= targetHit {
			hi = mid
			if mid < best {
				best, bestRun = mid, run
			}
		} else {
			lo = mid
		}
	}
	return best, bestRun, nil
}
