package mrdspark

import (
	"fmt"

	"mrdspark/internal/cluster"
	"mrdspark/internal/sim"
	"mrdspark/internal/workload"
)

// CacheNeeded finds, by bisection, the smallest per-node cache size at
// which the configured policy reaches the target hit ratio on the
// workload — the capacity-planning use the paper's §5.6 motivates
// ("MRD requires only 0.33 GB [against LRU's 0.88 GB], the equivalent
// of 63% savings in cache space... this is significant as it leads to
// resource and cost savings").
//
// It returns the found per-node size and the run at that size. If even
// a cache big enough to hold everything misses the target (some
// workloads' first-touch misses bound the hit ratio), it returns an
// error carrying the best achievable ratio.
func CacheNeeded(cfg Config, targetHit float64) (int64, Result, error) {
	if targetHit <= 0 || targetHit > 1 {
		return 0, Result{}, fmt.Errorf("mrdspark: target hit ratio %v outside (0, 1]", targetHit)
	}
	if cfg.Workload == "" {
		return 0, Result{}, fmt.Errorf("mrdspark: Config.Workload is empty (choose from %v)", Workloads())
	}
	cl := cfg.Cluster
	if cl.Nodes == 0 {
		cl = cluster.Main()
	}

	runAt := func(perNode int64) (Result, error) {
		spec, err := workload.Build(cfg.Workload, cfg.Params)
		if err != nil {
			return Result{}, err
		}
		factory, err := NewPolicy(cfg.Policy, cfg, spec.Graph)
		if err != nil {
			return Result{}, err
		}
		return sim.Run(spec.Graph, cl.WithCache(perNode), factory, spec.Name)
	}

	// Establish the bracket: lo = one largest block (the smallest
	// usable store), hi = enough for the whole cached working set.
	spec, err := workload.Build(cfg.Workload, cfg.Params)
	if err != nil {
		return 0, Result{}, err
	}
	var maxBlock, totalCached int64
	for _, r := range spec.Graph.CachedRDDs() {
		if r.PartSize > maxBlock {
			maxBlock = r.PartSize
		}
		totalCached += r.Size()
	}
	if maxBlock == 0 {
		return 0, Result{}, fmt.Errorf("mrdspark: workload %q caches nothing", cfg.Workload)
	}
	lo := maxBlock
	hi := totalCached/int64(cl.Nodes) + 2*maxBlock

	top, err := runAt(hi)
	if err != nil {
		return 0, Result{}, err
	}
	if top.HitRatio() < targetHit {
		return 0, top, fmt.Errorf("mrdspark: target hit %.2f unreachable; best achievable is %.2f (first-touch misses)",
			targetHit, top.HitRatio())
	}
	best := hi
	bestRun := top
	// Bisect to ~2% resolution. Hit ratio is not perfectly monotone in
	// cache size, so keep the smallest size seen to satisfy the target
	// rather than trusting the final bracket blindly.
	for i := 0; i < 24 && hi-lo > maxBlock/8+1; i++ {
		mid := lo + (hi-lo)/2
		run, err := runAt(mid)
		if err != nil {
			return 0, Result{}, err
		}
		if run.HitRatio() >= targetHit {
			hi = mid
			if mid < best {
				best, bestRun = mid, run
			}
		} else {
			lo = mid
		}
	}
	return best, bestRun, nil
}
