// Command mrdexec really executes one benchmark workload — generated
// key/value partitions flowing through the DAG's operators on a
// master/worker runtime with a live, policy-advised block manager —
// and prints the measured result: wall-clock JCT, the cache decision
// counters (byte-comparable with mrdsim's and mrdadvise's), and the
// data-plane counters only a real execution has (spilled bytes,
// shuffle volume, lineage recomputes, task retries).
//
// Usage:
//
//	mrdexec -workload PR -policy MRD -workers 4 -cache 64M
//	mrdexec -workload SCC -policy LRU -rows 2048 -skew 0.5
//	mrdexec -workload KM -kill-worker 1 -kill-mid
//	mrdexec -workload SCC -report out.html -trace trace.jsonl
//	mrdexec -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mrdspark/internal/core"
	"mrdspark/internal/exec"
	"mrdspark/internal/experiments"
	"mrdspark/internal/obs"
	"mrdspark/internal/workload"
)

// policyNames lists the selectable policies in display order.
var policyNames = []string{
	"MRD", "MRD-evict", "MRD-prefetch", "MRD-dynamic",
	"LRU", "FIFO", "LFU", "Hyperbolic", "GDS", "MemTune", "MIN", "LRC",
}

// parsePolicy maps a policy name onto the experiment suite's spec —
// the same aliases the simulator's front door accepts, so a policy
// name means the same thing to mrdsim and mrdexec.
func parsePolicy(name string, adhoc, jobDist bool) (experiments.PolicySpec, error) {
	spec := experiments.PolicySpec{Kind: name, AdHoc: adhoc}
	if jobDist {
		spec.MRD.Metric = core.JobDistance
	}
	switch name {
	case "MRD-evict":
		spec.Kind = "MRD"
		spec.MRD.DisablePrefetch = true
	case "MRD-prefetch":
		spec.Kind = "MRD"
		spec.MRD.DisableEviction = true
	case "MRD-dynamic":
		spec.Kind = "MRD"
		spec.MRD.DynamicThreshold = true
	case "MRD", "LRU", "FIFO", "LFU", "Hyperbolic", "GDS", "MemTune", "MIN", "LRC":
	default:
		return spec, fmt.Errorf("unknown policy %q (have %s)", name, strings.Join(policyNames, ", "))
	}
	return spec, nil
}

func main() {
	name := flag.String("workload", "PR", "workload name (see -list)")
	policy := flag.String("policy", "MRD", "cache policy: "+strings.Join(policyNames, ", "))
	workers := flag.Int("workers", exec.DefaultWorkers, "worker goroutines (one block manager each)")
	cache := flag.String("cache", "", "per-worker cache size, e.g. 64M or 1G (default 64M)")
	rows := flag.Int("rows", 0, "generated rows per source partition (0 = default 512)")
	skew := flag.Float64("skew", 0, "hot-key fraction of generated rows in [0,1) (0 = default 0.2)")
	seed := flag.Int64("seed", 0, "data-generation seed (also perturbs the DAG like mrdsim's -seed)")
	iters := flag.Int("iterations", 0, "override the workload's iteration parameter")
	adhoc := flag.Bool("adhoc", false, "build the DAG profile one job at a time (no recurring profile)")
	jobDist := flag.Bool("jobdistance", false, "use job distance instead of stage distance (MRD)")
	killWorker := flag.Int("kill-worker", -1, "kill this worker during the run (-1 = none)")
	killStage := flag.Int("kill-stage", -1, "executed-stage index at which the kill lands (-1 = middle)")
	killMid := flag.Bool("kill-mid", false, "kill mid-stage, under the running task wave, instead of at the boundary")
	traceFile := flag.String("trace", "", "write a JSONL event trace to this file")
	reportFile := flag.String("report", "", "write a self-contained HTML run report to this file")
	promFile := flag.String("prom", "", "write per-stage/per-node metrics in Prometheus text format to this file")
	list := flag.Bool("list", false, "list workloads and policies and exit")
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(workload.Names(), " "))
		fmt.Println("policies: ", strings.Join(policyNames, " "))
		return
	}

	spec, err := workload.Build(*name, workload.Params{
		Iterations: *iters,
		Seed:       *seed,
		DataRows:   *rows,
		DataSkew:   *skew,
	})
	if err != nil {
		fatal(err)
	}

	pol, err := parsePolicy(*policy, *adhoc, *jobDist)
	if err != nil {
		fatal(err)
	}

	cfg := exec.Config{Workers: *workers, Policy: pol}
	if *cache != "" {
		b, err := parseBytes(*cache)
		if err != nil {
			fatal(err)
		}
		cfg.CacheBytes = b
	}
	if *killWorker >= 0 {
		stages := spec.Graph.ExecutedStages()
		ix := *killStage
		if ix < 0 {
			ix = len(stages) / 2
		}
		if ix >= len(stages) {
			fatal(fmt.Errorf("kill stage index %d out of range: %s executes %d stages", ix, *name, len(stages)))
		}
		cfg.Kill = &exec.KillSpec{Worker: *killWorker, Stage: stages[ix].ID, Mid: *killMid}
	}

	engine, err := exec.New(spec, cfg)
	if err != nil {
		fatal(err)
	}

	// The observability pipeline taps the engine's event stream exactly
	// as it taps the simulator's.
	bus := obs.New()
	var rec *obs.Recorder
	if *traceFile != "" {
		rec = obs.NewRecorder()
		rec.Attach(bus)
	}
	agg := obs.NewAggregator()
	agg.Attach(bus)
	engine.AttachBus(bus)

	res, err := engine.Run()
	if err != nil {
		fatal(err)
	}

	if rec != nil {
		if err := writeTo(*traceFile, rec.WriteJSONL); err != nil {
			fatal(err)
		}
	}
	if *promFile != "" {
		if err := writeTo(*promFile, func(w io.Writer) error { return obs.WritePrometheus(w, agg) }); err != nil {
			fatal(err)
		}
	}
	if *reportFile != "" {
		run := agg.SynthesizeRun(res.Workload, res.Policy)
		if err := writeTo(*reportFile, agg.Report(run).WriteHTML); err != nil {
			fatal(err)
		}
	}

	hits, misses := res.Counters.Hits, res.Counters.Misses
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = exec.DefaultCacheBytes
	}
	fmt.Printf("workload:        %s executed on %d workers (%s cache/worker, %d rows/partition)\n",
		res.Workload, res.Workers, mb(cacheBytes), pick(*rows, exec.DefaultRows))
	fmt.Printf("policy:          %s\n", res.Policy)
	fmt.Printf("JCT:             %v (measured wall clock)\n", res.JCT)
	fmt.Printf("hit ratio:       %.1f%% (%d hits / %d misses)\n", 100*ratio, hits, misses)
	fmt.Printf("miss breakdown:  %d disk promotes, %d recomputes\n", res.Counters.Promotes, res.Counters.Recomputes)
	fmt.Printf("evictions:       %d (+%d purged)\n", res.Counters.Evictions, res.Counters.Purged)
	fmt.Printf("prefetch:        %d issued, %d used, %d wasted, %d pending\n",
		res.PrefetchIssued, res.PrefetchUsed, res.PrefetchWasted, res.PrefetchPending)
	fmt.Printf("data plane:      %d tasks (%d retried), %s spilled in %d blocks, %s shuffled, %d remote fetches\n",
		res.TasksRun, res.TaskRetries, mb(res.SpillBytes), res.Spills, mb(res.ShuffleBytes), res.RemoteFetches)
	fmt.Printf("lineage:         %d block/map-output recomputes\n", res.LineageRecomputes)
	fmt.Printf("output digest:   %#016x (%d jobs)\n", res.OutputDigest, len(res.JobDigests))
	if cfg.Kill != nil {
		mode := "at the stage boundary"
		if cfg.Kill.Mid {
			mode = "mid-stage, under the task wave"
		}
		fmt.Printf("chaos:           worker %d killed %s (stage %d)\n", cfg.Kill.Worker, mode, cfg.Kill.Stage)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mrdexec:", err)
	os.Exit(1)
}

func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

func mb(b int64) string { return fmt.Sprintf("%.1fMB", float64(b)/(1<<20)) }

// writeTo creates the file and streams fn's output into it.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseBytes parses sizes like 512M, 1G, 64K or plain byte counts.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	return int64(v * float64(mult)), nil
}
