// Command experiments regenerates every table and figure of the
// paper's evaluation (plus the ablations DESIGN.md adds) and prints
// them as aligned text tables.
//
// Usage:
//
//	experiments                # run the full suite
//	experiments -list          # list experiment IDs
//	experiments -only fig4,fig7
//	experiments -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mrdspark/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	out := flag.String("out", "", "write results to this file as well as stdout")
	flag.Parse()

	if *list {
		for _, e := range experiments.Suite() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	sel := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			sel[strings.TrimSpace(id)] = true
		}
		known := map[string]bool{}
		for _, e := range experiments.Suite() {
			known[e.ID] = true
		}
		for id := range sel {
			if !known[id] {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	if err := experiments.RunSuite(w, sel); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
