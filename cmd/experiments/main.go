// Command experiments regenerates every table and figure of the
// paper's evaluation (plus the ablations DESIGN.md adds) and prints
// them as aligned text tables.
//
// Usage:
//
//	experiments                # run the full suite
//	experiments -list          # list experiment IDs
//	experiments -only fig4,fig7
//	experiments -out results.txt
//
// Sweep mode runs the full policy x workload x cluster x chaos grid
// through the sharded experiment fabric and writes one consolidated
// HTML report:
//
//	experiments -sweep                          # full grid, GOMAXPROCS workers
//	experiments -sweep -sweep-grid smoke        # reduced CI grid
//	experiments -sweep -cache-dir .sweep-cache  # persistent cross-process run cache
//	experiments -sweep -sweep-shard 0/2 -sweep-shard-out s0.json
//	experiments -sweep -sweep-shard 1/2 -sweep-shard-out s1.json
//	experiments -sweep-merge s0.json,s1.json    # merge once, render the report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mrdspark/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	out := flag.String("out", "", "write results to this file as well as stdout")

	sweep := flag.Bool("sweep", false, "run the sweep grid instead of the paper suite")
	sweepGrid := flag.String("sweep-grid", "full", "sweep grid: full or smoke")
	sweepHTML := flag.String("sweep-html", "sweep.html", "write the consolidated sweep report here")
	sweepWorkers := flag.Int("sweep-workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persist the run cache in this directory (cross-process warm starts)")
	sweepShard := flag.String("sweep-shard", "", "compute only shard i/n of the grid (e.g. 0/2)")
	sweepShardOut := flag.String("sweep-shard-out", "", "write the computed shard here (required with -sweep-shard)")
	sweepMerge := flag.String("sweep-merge", "", "comma-separated shard files to merge into the report")
	flag.Parse()

	if *list {
		for _, e := range experiments.Suite() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	if *sweepMerge != "" {
		if err := runMerge(strings.Split(*sweepMerge, ","), *sweepHTML); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *sweep {
		if err := runSweep(*sweepGrid, *sweepHTML, *sweepWorkers, *cacheDir, *sweepShard, *sweepShardOut); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	sel := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			sel[strings.TrimSpace(id)] = true
		}
		known := map[string]bool{}
		for _, e := range experiments.Suite() {
			known[e.ID] = true
		}
		for id := range sel {
			if !known[id] {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(2)
			}
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	if err := experiments.RunSuite(w, sel); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// gridFor resolves the -sweep-grid flag.
func gridFor(name string) (experiments.SweepConfig, error) {
	switch name {
	case "full":
		return experiments.FullSweep(), nil
	case "smoke":
		return experiments.SmokeSweep(), nil
	default:
		return experiments.SweepConfig{}, fmt.Errorf("unknown sweep grid %q (have full, smoke)", name)
	}
}

// runSweep executes the grid (whole, or one shard of a multi-process
// split) and reports the scrapeable cache summary on stdout.
func runSweep(gridName, htmlOut string, workers int, cacheDir, shardSpec, shardOut string) error {
	cfg, err := gridFor(gridName)
	if err != nil {
		return err
	}
	if cacheDir != "" {
		store, err := experiments.OpenCacheStore(cacheDir)
		if err != nil {
			return err
		}
		defer store.Close()
		loaded, skipped, rebuilt := store.LoadReport()
		fmt.Printf("cache: dir=%s entries=%d skipped=%d rebuilt=%v\n",
			cacheDir, loaded, skipped, rebuilt)
		experiments.SetCacheStore(store)
		defer experiments.SetCacheStore(nil)
	}
	start := time.Now()
	if shardSpec != "" {
		var shard, of int
		if _, err := fmt.Sscanf(shardSpec, "%d/%d", &shard, &of); err != nil {
			return fmt.Errorf("bad -sweep-shard %q (want i/n): %v", shardSpec, err)
		}
		if shardOut == "" {
			return fmt.Errorf("-sweep-shard requires -sweep-shard-out")
		}
		sf, err := experiments.RunSweepShard(cfg, shard, of, workers)
		if err != nil {
			return err
		}
		if err := sf.WriteFile(shardOut); err != nil {
			return err
		}
		fmt.Printf("sweep: shard=%d/%d rows=%d grid=%d %s elapsed=%v\n",
			shard, of, len(sf.Rows), sf.GridLen, sf.Stats, time.Since(start).Round(time.Millisecond))
		return nil
	}
	res, err := experiments.RunSweep(cfg, workers)
	if err != nil {
		return err
	}
	if err := os.WriteFile(htmlOut, experiments.RenderSweepHTML(res), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s elapsed=%v report=%s\n",
		res.Summary(), time.Since(start).Round(time.Millisecond), htmlOut)
	return nil
}

// runMerge merges shard files exactly once and renders the report.
func runMerge(paths []string, htmlOut string) error {
	files := make([]*experiments.ShardFile, 0, len(paths))
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		sf, err := experiments.ReadShardFile(p)
		if err != nil {
			return err
		}
		files = append(files, sf)
	}
	res, err := experiments.MergeShards(files)
	if err != nil {
		return err
	}
	if err := os.WriteFile(htmlOut, experiments.RenderSweepHTML(res), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s merged=%d report=%s\n", res.Summary(), len(files), htmlOut)
	return nil
}
