// Command mrdserver runs the online cache-advisory service: a
// long-running, multi-tenant HTTP server that external applications
// register their DAGs with and consult at every stage boundary for
// eviction victims and prefetch plans.
//
// Usage:
//
//	mrdserver -addr 127.0.0.1:7788
//	curl -s localhost:7788/healthz
//	curl -s localhost:7788/metrics
//
// Sharded deployment — N shards over one snapshot directory, fronted
// by a router (see DESIGN.md §12):
//
//	mrdserver -addr 127.0.0.1:7701 -snapshot-dir /tmp/snaps \
//	    -self http://127.0.0.1:7701 \
//	    -peers http://127.0.0.1:7702,http://127.0.0.1:7703
//	mrdserver -addr 127.0.0.1:7700 -router \
//	    -shards http://127.0.0.1:7701,http://127.0.0.1:7702,http://127.0.0.1:7703
//
// SIGTERM or SIGINT drains: every live session is snapshotted first
// (visible as mrdserver_drain_snapshots_written on /metrics during the
// -drain-linger window), then in-flight requests finish and the
// listener closes, logging "drained".
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mrdspark/internal/obs/trace"
	"mrdspark/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7788", "listen address")
	maxSessions := flag.Int("max-sessions", service.DefaultMaxSessions, "LRU bound on live sessions")
	idle := flag.Duration("idle-timeout", service.DefaultIdleTimeout, "evict sessions idle longer than this (negative disables)")
	inflight := flag.Int("max-inflight", service.DefaultMaxInflight, "concurrent-request cap; excess requests are shed with 503")
	reqTimeout := flag.Duration("request-timeout", service.DefaultRequestTimeout, "per-request timeout")
	drain := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget on SIGTERM/SIGINT")
	snapDir := flag.String("snapshot-dir", "", "session snapshot directory; empty disables persistence. Shards sharing one directory can adopt each other's sessions")
	snapEvery := flag.Int("snapshot-every", service.DefaultSnapshotEveryOps, "write a session snapshot after every N mutations")
	self := flag.String("self", "", "this shard's advertised base URL (required with -peers)")
	peers := flag.String("peers", "", "comma-separated peer shard base URLs for liveness gossip")
	hbEvery := flag.Duration("heartbeat-every", service.DefaultHeartbeatEvery, "peer heartbeat period")
	peerDeadline := flag.Duration("peer-deadline", service.DefaultPeerDeadline, "silence before a peer is reported dead")
	drainLinger := flag.Duration("drain-linger", 0, "keep serving (metrics included) this long after drain snapshots are written, before closing the listener")
	router := flag.Bool("router", false, "run as a stateless routing tier over -shards instead of an advisory shard")
	shards := flag.String("shards", "", "comma-separated shard base URLs (router mode)")
	probeEvery := flag.Duration("probe-every", service.DefaultProbeEvery, "shard health-probe period (router mode)")
	traceCap := flag.Int("trace-capacity", trace.DefaultCapacity, "span ring-buffer capacity; 0 disables tracing entirely (zero-alloc hot path)")
	traceOut := flag.String("trace-out", "", "write the span export (JSONL) here on drain")
	traceChrome := flag.String("trace-chrome", "", "write the Chrome trace_event export here on drain")
	debugAddr := flag.String("debug-addr", "", "separate listener for pprof and live span exports (/debug/pprof/, /debug/spans.jsonl, /debug/trace.json); empty disables")
	slowReq := flag.Duration("slow-request", 0, "log requests slower than this; 0 disables")
	queueGrace := flag.Duration("queue-grace", 0, "at capacity, wait up to this long for an inflight slot before shedding; 0 sheds immediately")
	frameAddr := flag.String("frame-addr", "", "listen address for the binary frame protocol (advertised on /healthz); empty disables. In router mode frames splice through to the owning shard")
	flag.Parse()

	var tracer *trace.Tracer
	if *traceCap > 0 {
		tracer = trace.NewTracer(*traceCap)
	}
	if *debugAddr != "" {
		serveDebug(*debugAddr, tracer)
	}

	if *router {
		runRouter(*addr, *frameAddr, splitList(*shards), *probeEvery, *drain, tracer, *traceOut, *traceChrome)
		return
	}

	var snapStore service.SnapshotStore
	if *snapDir != "" {
		ds, err := service.NewDirStore(*snapDir)
		if err != nil {
			log.Fatalf("mrdserver: %v", err)
		}
		snapStore = ds
	}
	peerList := splitList(*peers)
	if len(peerList) > 0 && *self == "" {
		log.Fatalf("mrdserver: -peers requires -self")
	}

	srv := service.NewServer(service.ServerConfig{
		Registry:       service.RegistryConfig{MaxSessions: *maxSessions, IdleTimeout: *idle},
		MaxInflight:    *inflight,
		RequestTimeout: *reqTimeout,
		QueueGrace:     *queueGrace,
		Snapshots:      service.SnapshotPolicy{Store: snapStore, EveryOps: *snapEvery},
		Peers:          service.PeerConfig{Self: *self, Peers: peerList, Every: *hbEvery, Deadline: *peerDeadline},
		Trace:          service.TraceConfig{Tracer: tracer, SlowRequest: *slowReq},
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mrdserver: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	var frameLn net.Listener
	if *frameAddr != "" {
		frameLn, err = net.Listen("tcp", *frameAddr)
		if err != nil {
			log.Fatalf("mrdserver: frame listener: %v", err)
		}
		go func() {
			if err := srv.ServeFrames(frameLn); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("mrdserver: frame listener: %v", err)
			}
		}()
		log.Printf("mrdserver: frame protocol on %s", frameLn.Addr())
	}
	log.Printf("mrdserver: listening on %s (max-sessions=%d, max-inflight=%d, snapshots=%v, peers=%d)",
		ln.Addr(), *maxSessions, *inflight, snapStore != nil, len(peerList))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("mrdserver: %v", err)
	case <-ctx.Done():
	}

	// Drain order matters: snapshot every live session FIRST, while the
	// listener still answers, so (a) no session state is lost if the
	// drain budget expires, and (b) CI can scrape
	// mrdserver_drain_snapshots_written from /metrics during the linger
	// window to assert the drain actually persisted everything.
	log.Printf("mrdserver: signal received, draining")
	if frameLn != nil {
		// Stop accepting frame connections before snapshotting, so no
		// new mutations slip in behind the drain passes. In-flight frame
		// requests on live connections still finish serially.
		frameLn.Close()
	}
	if n := srv.DrainSnapshots(); snapStore != nil {
		log.Printf("mrdserver: drain snapshots written: %d", n)
	}
	if *drainLinger > 0 {
		time.Sleep(*drainLinger)
	}
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Fatalf("mrdserver: drain failed: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mrdserver: %v", err)
	}
	// A final pass catches mutations that raced the first drain pass.
	srv.DrainSnapshots()
	exportTraces(tracer, *traceOut, *traceChrome)
	log.Printf("mrdserver: drained")
}

// runRouter serves the stateless routing tier.
func runRouter(addr, frameAddr string, shards []string, probeEvery, drain time.Duration, tracer *trace.Tracer, traceOut, traceChrome string) {
	if len(shards) == 0 {
		log.Fatalf("mrdserver: -router requires -shards")
	}
	rt := service.NewRouter(service.RouterConfig{
		Shards: shards, ProbeEvery: probeEvery,
		Trace: service.TraceConfig{Tracer: tracer},
	})
	defer rt.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("mrdserver: %v", err)
	}
	var frameLn net.Listener
	if frameAddr != "" {
		frameLn, err = net.Listen("tcp", frameAddr)
		if err != nil {
			log.Fatalf("mrdserver: frame listener: %v", err)
		}
		go func() {
			if err := rt.ServeFrames(frameLn); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("mrdserver: frame listener: %v", err)
			}
		}()
		log.Printf("mrdserver: router frame protocol on %s", frameLn.Addr())
	}
	hs := &http.Server{Handler: rt}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	log.Printf("mrdserver: router listening on %s over %d shards", ln.Addr(), len(shards))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("mrdserver: %v", err)
	case <-ctx.Done():
	}

	log.Printf("mrdserver: signal received, draining")
	if frameLn != nil {
		frameLn.Close()
	}
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Fatalf("mrdserver: drain failed: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mrdserver: %v", err)
	}
	exportTraces(tracer, traceOut, traceChrome)
	log.Printf("mrdserver: drained")
}

// serveDebug starts the debug listener: pprof plus the live span
// exports. It is meant for a loopback/ops address, never the public
// one — which is why it is a separate listener behind its own flag.
func serveDebug(addr string, tracer *trace.Tracer) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("mrdserver: debug listener: %v", err)
	}
	log.Printf("mrdserver: debug endpoints on %s (pprof, spans.jsonl, trace.json)", ln.Addr())
	go func() {
		if err := http.Serve(ln, service.DebugHandler(tracer)); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("mrdserver: debug listener: %v", err)
		}
	}()
}

// exportTraces writes the drain-time span exports (either path empty
// means skip). A nil tracer writes empty-but-valid files so callers
// can rely on the artifact existing.
func exportTraces(tracer *trace.Tracer, jsonlPath, chromePath string) {
	write := func(path string, render func(f *os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			log.Printf("mrdserver: trace export: %v", err)
			return
		}
		if err := render(f); err != nil {
			log.Printf("mrdserver: trace export %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Printf("mrdserver: trace export %s: %v", path, err)
		}
	}
	spans := tracer.Spans()
	write(jsonlPath, func(f *os.File) error { return trace.WriteJSONL(f, spans) })
	write(chromePath, func(f *os.File) error { return trace.WriteChromeTrace(f, spans) })
	if jsonlPath != "" || chromePath != "" {
		total, dropped := tracer.Stats()
		log.Printf("mrdserver: exported %d spans (recorded %d, ring dropped %d)", len(spans), total, dropped)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
