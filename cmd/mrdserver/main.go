// Command mrdserver runs the online cache-advisory service: a
// long-running, multi-tenant HTTP server that external applications
// register their DAGs with and consult at every stage boundary for
// eviction victims and prefetch plans.
//
// Usage:
//
//	mrdserver -addr 127.0.0.1:7788
//	curl -s localhost:7788/healthz
//	curl -s localhost:7788/metrics
//
// SIGTERM or SIGINT drains in-flight requests and exits cleanly,
// logging "drained" once the listener is down.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mrdspark/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7788", "listen address")
	maxSessions := flag.Int("max-sessions", service.DefaultMaxSessions, "LRU bound on live sessions")
	idle := flag.Duration("idle-timeout", service.DefaultIdleTimeout, "evict sessions idle longer than this (negative disables)")
	inflight := flag.Int("max-inflight", service.DefaultMaxInflight, "concurrent-request cap; excess requests are shed with 503")
	reqTimeout := flag.Duration("request-timeout", service.DefaultRequestTimeout, "per-request timeout")
	drain := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget on SIGTERM/SIGINT")
	flag.Parse()

	srv := service.NewServer(service.ServerConfig{
		Registry:       service.RegistryConfig{MaxSessions: *maxSessions, IdleTimeout: *idle},
		MaxInflight:    *inflight,
		RequestTimeout: *reqTimeout,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mrdserver: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	log.Printf("mrdserver: listening on %s (max-sessions=%d, max-inflight=%d)", ln.Addr(), *maxSessions, *inflight)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("mrdserver: %v", err)
	case <-ctx.Done():
	}

	log.Printf("mrdserver: signal received, draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Fatalf("mrdserver: drain failed: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mrdserver: %v", err)
	}
	log.Printf("mrdserver: drained")
}
