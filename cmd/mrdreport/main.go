// Command mrdreport renders run artifacts offline from a recorded
// JSONL event trace (mrdsim -trace): the same self-contained HTML
// report and Prometheus exposition mrdsim produces live, recovered by
// replaying the trace through the streaming aggregator. Headline
// counters that never enter the event stream (I/O byte volumes, wall
// time) are absent in replayed reports.
//
// It also renders service span exports (mrdserver/mrdload -trace-out)
// as an offline request waterfall, and can merge several exports —
// e.g. one per tier — into a single stitched timeline.
//
// Usage:
//
//	mrdsim -workload SCC -trace trace.jsonl
//	mrdreport -trace trace.jsonl -o report.html
//	mrdreport -trace trace.jsonl -prom metrics.txt
//	mrdreport -spans client.jsonl,router.jsonl,shard.jsonl -o waterfall.html
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"flag"

	"mrdspark/internal/obs"
	"mrdspark/internal/obs/trace"
)

func main() {
	traceFile := flag.String("trace", "", "JSONL event trace to replay (- for stdin)")
	spanFiles := flag.String("spans", "", "comma-separated span JSONL exports (mrdserver/mrdload -trace-out) to render as a request waterfall; merged into one timeline")
	out := flag.String("o", "", "write the HTML report to this file (- for stdout)")
	promFile := flag.String("prom", "", "write the Prometheus text exposition to this file")
	chromeOut := flag.String("chrome", "", "with -spans: also write the merged spans as a Chrome trace_event file")
	title := flag.String("title", "replayed trace", "report title (the trace does not carry workload/policy names)")
	flag.Parse()

	if *spanFiles != "" {
		if *traceFile != "" {
			fmt.Fprintln(os.Stderr, "mrdreport: -trace and -spans are mutually exclusive")
			os.Exit(2)
		}
		runSpans(*spanFiles, *out, *chromeOut, *title)
		return
	}
	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "mrdreport: one of -trace or -spans is required")
		flag.Usage()
		os.Exit(2)
	}
	if *out == "" && *promFile == "" {
		*out = "-"
	}

	var in io.Reader = os.Stdin
	if *traceFile != "-" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrdreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	events, err := obs.ReadJSONL(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrdreport:", err)
		os.Exit(1)
	}
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "mrdreport: trace is empty")
		os.Exit(1)
	}
	agg := obs.Replay(events)

	if *promFile != "" {
		if err := writeTo(*promFile, func(w io.Writer) error { return obs.WritePrometheus(w, agg) }); err != nil {
			fmt.Fprintln(os.Stderr, "mrdreport:", err)
			os.Exit(1)
		}
	}
	if *out != "" {
		rep := agg.Report(agg.SynthesizeRun(*title, ""))
		rep.Title = *title
		if err := writeTo(*out, rep.WriteHTML); err != nil {
			fmt.Fprintln(os.Stderr, "mrdreport:", err)
			os.Exit(1)
		}
	}
}

// runSpans merges one or more span JSONL exports and renders the
// request waterfall (plus, optionally, a Chrome trace_event file).
// Merging matters because each tier exports its own ring: the stitch
// into full request trees only appears once client, router, and shard
// spans sit in one timeline.
func runSpans(files, out, chromeOut, title string) {
	var spans []trace.Span
	for _, path := range strings.Split(files, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		var in io.Reader = os.Stdin
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mrdreport:", err)
				os.Exit(1)
			}
			got, err := trace.ReadJSONL(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "mrdreport: %s: %v\n", path, err)
				os.Exit(1)
			}
			spans = append(spans, got...)
			continue
		}
		got, err := trace.ReadJSONL(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrdreport:", err)
			os.Exit(1)
		}
		spans = append(spans, got...)
	}
	if len(spans) == 0 {
		fmt.Fprintln(os.Stderr, "mrdreport: span exports are empty")
		os.Exit(1)
	}
	if title == "replayed trace" {
		title = "request waterfall"
	}
	if chromeOut != "" {
		if err := writeTo(chromeOut, func(w io.Writer) error { return trace.WriteChromeTrace(w, spans) }); err != nil {
			fmt.Fprintln(os.Stderr, "mrdreport:", err)
			os.Exit(1)
		}
	}
	if out == "" && chromeOut != "" {
		return
	}
	if out == "" {
		out = "-"
	}
	if err := writeTo(out, func(w io.Writer) error { return obs.WriteTraceWaterfall(w, spans, title) }); err != nil {
		fmt.Fprintln(os.Stderr, "mrdreport:", err)
		os.Exit(1)
	}
}

// writeTo streams fn's output into path, or stdout for "-".
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
