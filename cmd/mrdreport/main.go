// Command mrdreport renders run artifacts offline from a recorded
// JSONL event trace (mrdsim -trace): the same self-contained HTML
// report and Prometheus exposition mrdsim produces live, recovered by
// replaying the trace through the streaming aggregator. Headline
// counters that never enter the event stream (I/O byte volumes, wall
// time) are absent in replayed reports.
//
// Usage:
//
//	mrdsim -workload SCC -trace trace.jsonl
//	mrdreport -trace trace.jsonl -o report.html
//	mrdreport -trace trace.jsonl -prom metrics.txt
package main

import (
	"fmt"
	"io"
	"os"

	"flag"

	"mrdspark/internal/obs"
)

func main() {
	traceFile := flag.String("trace", "", "JSONL event trace to replay (required; - for stdin)")
	out := flag.String("o", "", "write the HTML report to this file (- for stdout)")
	promFile := flag.String("prom", "", "write the Prometheus text exposition to this file")
	title := flag.String("title", "replayed trace", "report title (the trace does not carry workload/policy names)")
	flag.Parse()

	if *traceFile == "" {
		fmt.Fprintln(os.Stderr, "mrdreport: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	if *out == "" && *promFile == "" {
		*out = "-"
	}

	var in io.Reader = os.Stdin
	if *traceFile != "-" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrdreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	events, err := obs.ReadJSONL(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrdreport:", err)
		os.Exit(1)
	}
	if len(events) == 0 {
		fmt.Fprintln(os.Stderr, "mrdreport: trace is empty")
		os.Exit(1)
	}
	agg := obs.Replay(events)

	if *promFile != "" {
		if err := writeTo(*promFile, func(w io.Writer) error { return obs.WritePrometheus(w, agg) }); err != nil {
			fmt.Fprintln(os.Stderr, "mrdreport:", err)
			os.Exit(1)
		}
	}
	if *out != "" {
		rep := agg.Report(agg.SynthesizeRun(*title, ""))
		rep.Title = *title
		if err := writeTo(*out, rep.WriteHTML); err != nil {
			fmt.Fprintln(os.Stderr, "mrdreport:", err)
			os.Exit(1)
		}
	}
}

// writeTo streams fn's output into path, or stdout for "-".
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
