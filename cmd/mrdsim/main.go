// Command mrdsim runs one benchmark workload on one simulated cluster
// under one cache policy and prints the run's metrics — the quickest
// way to poke at the system.
//
// Usage:
//
//	mrdsim -workload PR -policy MRD -cache 128M
//	mrdsim -workload SCC -policy LRU -cluster lrc
//	mrdsim -workload KM -policy MRD -adhoc -iterations 27
//	mrdsim -workload SCC -report out.html -trace trace.jsonl -prom metrics.txt
//	mrdsim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"mrdspark"
)

func main() {
	name := flag.String("workload", "PR", "workload name (see -list)")
	policy := flag.String("policy", "MRD", "cache policy: "+strings.Join(mrdspark.Policies(), ", "))
	clusterName := flag.String("cluster", "main", "cluster preset: main, lrc, memtune")
	cache := flag.String("cache", "", "per-node cache size, e.g. 512M or 1G (default: preset's)")
	iters := flag.Int("iterations", 0, "override the workload's iteration parameter")
	adhoc := flag.Bool("adhoc", false, "build the DAG profile one job at a time (no recurring profile)")
	jobDist := flag.Bool("jobdistance", false, "use job distance instead of stage distance (MRD)")
	failNode := flag.Int("failnode", 0, "inject a failure of node N-1 (1-based; 0 = none)")
	failStage := flag.Int("failstage", 0, "executed-stage index at which the failure hits")
	chaos := flag.String("chaos", "", "fault-schedule preset (see -list; overrides -failnode)")
	replication := flag.Int("replication", 0, "replica copies per cached/shuffle block (0 = schedule default)")
	fetchFail := flag.Float64("fetchfail", -1, "remote-fetch failure probability in [0,1) (-1 = schedule default)")
	seed := flag.Int64("seed", 0, "fault-schedule RNG seed (0 = schedule default)")
	reissueDelay := flag.Int("reissuedelay", 0, "stages the MRD_Table re-issue takes to propagate after a crash")
	stages := flag.Bool("stages", false, "print the per-stage execution timeline")
	traceFile := flag.String("trace", "", "write a JSONL event trace (hits, evictions, prefetches) to this file")
	reportFile := flag.String("report", "", "write a self-contained HTML run report to this file")
	promFile := flag.String("prom", "", "write per-stage/per-node metrics in Prometheus text format to this file")
	baseline := flag.String("baseline", "LRU", "comma-separated baseline policies for the report's comparison table (with -report)")
	list := flag.Bool("list", false, "list workloads and policies and exit")
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(mrdspark.Workloads(), " "))
		fmt.Println("policies: ", strings.Join(mrdspark.Policies(), " "))
		fmt.Println("chaos:    ", strings.Join(mrdspark.FaultPresets(), " "))
		return
	}

	cfg := mrdspark.Config{
		Workload:    *name,
		Policy:      *policy,
		Params:      mrdspark.WorkloadParams{Iterations: *iters},
		AdHoc:       *adhoc,
		FailNode:    *failNode,
		FailAtStage: *failStage,
	}
	if *jobDist {
		cfg.MRD.Metric = 1 // core.JobDistance
	}
	cfg.MRD.ReissueDelayStages = *reissueDelay
	switch strings.ToLower(*clusterName) {
	case "main", "":
		cfg.Cluster = mrdspark.MainCluster()
	case "lrc":
		cfg.Cluster = mrdspark.LRCCluster()
	case "memtune":
		cfg.Cluster = mrdspark.MemTuneCluster()
	default:
		fmt.Fprintf(os.Stderr, "mrdsim: unknown cluster %q (main, lrc, memtune)\n", *clusterName)
		os.Exit(2)
	}
	if *cache != "" {
		b, err := parseBytes(*cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrdsim:", err)
			os.Exit(2)
		}
		cfg.CachePerNode = b
	}

	// A chaos preset is instantiated against the cluster size and the
	// workload's executed-stage count, then tweaked by the override
	// flags. Plain -replication / -fetchfail / -seed without -chaos
	// modify an otherwise-empty (healthy) schedule.
	if *chaos != "" || *replication > 0 || *fetchFail >= 0 || *seed != 0 {
		sched := &mrdspark.FaultSchedule{Seed: 42}
		if *chaos != "" {
			spec, err := mrdspark.BuildWorkload(cfg.Workload, cfg.Params)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mrdsim:", err)
				os.Exit(2)
			}
			sched, err = mrdspark.FaultPreset(*chaos, cfg.Cluster.Nodes, spec.Graph.ActiveStages())
			if err != nil {
				fmt.Fprintln(os.Stderr, "mrdsim:", err)
				os.Exit(2)
			}
		}
		if *replication > 0 {
			sched.Replication = *replication
		}
		if *fetchFail >= 0 {
			sched.FetchFailureRate = *fetchFail
		}
		if *seed != 0 {
			sched.Seed = *seed
		}
		cfg.Fault = sched
	}

	var trace io.Writer
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrdsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		trace = f
	}

	var run mrdspark.Result
	var timeline []mrdspark.StageSpan
	if *reportFile != "" || *promFile != "" {
		// Observed path: the event bus feeds the aggregator that backs
		// the HTML report and the Prometheus exposition.
		o, err := mrdspark.RunObserved(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrdsim:", err)
			os.Exit(1)
		}
		run, timeline = o.Run, o.Timeline
		if trace != nil {
			if err := o.WriteTrace(trace); err != nil {
				fmt.Fprintln(os.Stderr, "mrdsim:", err)
				os.Exit(1)
			}
		}
		if *promFile != "" {
			if err := writeTo(*promFile, o.WritePrometheus); err != nil {
				fmt.Fprintln(os.Stderr, "mrdsim:", err)
				os.Exit(1)
			}
		}
		if *reportFile != "" {
			rep := o.Report()
			for _, b := range strings.Split(*baseline, ",") {
				b = strings.TrimSpace(b)
				if b == "" || b == cfg.Policy {
					continue
				}
				bcfg := cfg
				bcfg.Policy = b
				brun, err := mrdspark.Run(bcfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, "mrdsim: baseline:", err)
					os.Exit(1)
				}
				rep.AddBaseline(brun)
			}
			if err := writeTo(*reportFile, rep.WriteHTML); err != nil {
				fmt.Fprintln(os.Stderr, "mrdsim:", err)
				os.Exit(1)
			}
		}
	} else {
		var err error
		run, timeline, err = mrdspark.RunTraced(cfg, trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrdsim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("workload:        %s on %s (%d nodes, %s cache/node)\n",
		run.Workload, cfg.Cluster.Name, cfg.Cluster.Nodes, *cache)
	fmt.Printf("policy:          %s\n", run.Policy)
	fmt.Printf("JCT:             %v\n", run.JCTDuration())
	fmt.Printf("hit ratio:       %.1f%% (%d hits / %d misses)\n", 100*run.HitRatio(), run.Hits, run.Misses)
	fmt.Printf("miss breakdown:  %d disk promotes, %d recomputes\n", run.DiskPromotes, run.Recomputes)
	fmt.Printf("evictions:       %d (+%d purged)\n", run.Evictions, run.PurgedBlocks)
	fmt.Printf("prefetch:        %d issued, %d used, %d wasted (%.0f%% accuracy)\n",
		run.PrefetchIssued, run.PrefetchUsed, run.PrefetchWasted, 100*run.PrefetchAccuracy())
	fmt.Printf("I/O:             %s disk read, %s disk write, %s network\n",
		mb(run.DiskReadBytes), mb(run.DiskWriteBytes), mb(run.NetReadBytes))
	fmt.Printf("workflow:        %d jobs, %d stages executed, %d skipped, %d tasks\n",
		run.Jobs, run.StagesExecuted, run.StagesSkipped, run.TasksExecuted)
	if cfg.Fault != nil || run.NodeCrashes > 0 {
		fmt.Printf("faults:          %d crashes (%d rejoined), %d stragglers, %d blocks lost, %d corrupted\n",
			run.NodeCrashes, run.NodeRejoins, run.StragglerEvents, run.BlocksLost, run.BlocksCorrupted)
		fmt.Printf("recovery:        %s recomputed, %d replica hits (%s replica writes), %d fetch retries, %d give-ups\n",
			mb(run.RecomputeBytes), run.ReplicaHits, mb(run.ReplicaWriteBytes), run.FetchRetries, run.FetchGiveUps)
	}
	if run.FaultWarning != "" {
		fmt.Printf("WARNING:         %s\n", run.FaultWarning)
	}
	nodes := int64(cfg.Cluster.Nodes)
	if run.WallTime > 0 && nodes > 0 {
		fmt.Printf("utilization:     disk %.0f%%, network %.0f%% (mean across nodes)\n",
			100*float64(run.DiskBusy)/float64(run.WallTime*nodes),
			100*float64(run.NetBusy)/float64(run.WallTime*nodes))
	}

	if *stages {
		fmt.Println("\nper-stage timeline:")
		fmt.Printf("%-7s %-5s %-11s %-6s %-12s %-12s %s\n",
			"stage", "job", "kind", "tasks", "start", "end", "duration")
		for _, sp := range timeline {
			fmt.Printf("%-7d %-5d %-11s %-6d %-12v %-12v %v\n",
				sp.StageID, sp.JobID, sp.Kind, sp.Tasks,
				time.Duration(sp.Start)*time.Microsecond,
				time.Duration(sp.End)*time.Microsecond,
				sp.Duration())
		}
	}
}

func mb(b int64) string { return fmt.Sprintf("%.1fMB", float64(b)/(1<<20)) }

// writeTo creates the file and streams fn's output into it.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseBytes parses sizes like 512M, 1G, 64K or plain byte counts.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	return int64(v * float64(mult)), nil
}
