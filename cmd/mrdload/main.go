// Command mrdload replays benchmark workloads against a running
// mrdserver as N concurrent advisory sessions, measuring throughput and
// latency. With -parity every server decision is cross-checked
// byte-for-byte against an in-process advisor replaying the identical
// schedule — the subsystem's correctness oracle: if the server's advice
// ever diverges from the library, mrdload exits nonzero.
//
// With -shards it drives a shard group through the consistent-hash
// failover client instead of one server, and with -kill-after N /
// -kill-pid P it SIGKILLs process P after the Nth successful advance —
// the chaos harness: the oracle never dies, so parity still proves
// every post-failover decision (served by a snapshot-restored session
// on the surviving shard) is byte-identical to an uninterrupted run.
//
// Usage:
//
//	mrdload -sessions 8 -workload scc -parity
//	mrdload -sessions 64 -workload all -parity
//	mrdload -addr http://127.0.0.1:7788 -workload hibench -policy LRU
//	mrdload -shards http://127.0.0.1:7701,http://127.0.0.1:7702,http://127.0.0.1:7703 \
//	    -parity -kill-after 100 -kill-pid $SHARD2_PID
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mrdspark/internal/cluster"
	"mrdspark/internal/experiments"
	"mrdspark/internal/obs/trace"
	"mrdspark/internal/service"
	"mrdspark/internal/service/client"
	"mrdspark/internal/workload"
)

// groups maps the -workload presets to benchmark lists; any other
// value is taken as one literal workload name.
var groups = map[string][]string{
	"scc":     {"SCC"},
	"hibench": {"HB-Sort", "HB-WordCount", "HB-TeraSort", "HB-PageRank", "HB-Bayes", "HB-KMeans"},
	"mllib":   {"KM", "LinR", "LogR", "SVM", "DT", "MF"},
}

func init() {
	groups["all"] = append(append(append([]string{}, groups["scc"]...), groups["hibench"]...), groups["mllib"]...)
}

// api is the slice of the advisory API both the single-server client
// and the sharded failover client provide; the load loop is identical
// over either.
type api interface {
	CreateSession(ctx context.Context, req service.CreateSessionRequest) (service.CreateSessionResponse, error)
	SubmitJob(ctx context.Context, sessionID string, job int) (service.SubmitJobResponse, error)
	Advance(ctx context.Context, sessionID string, stage int) (service.Advice, error)
	RunBatch(ctx context.Context, sessionID string, steps []service.Step) (service.BatchResponse, error)
	DeleteSession(ctx context.Context, sessionID string) error
}

// killer SIGKILLs a victim process after the Nth successful advance —
// a deterministic chaos trigger (a wall-clock timer would race the
// load's progress and make CI flaky).
type killer struct {
	after int64 // advance count that pulls the trigger; 0 disables
	pid   int
	count atomic.Int64
	once  sync.Once
	fired atomic.Bool
}

// tick notes one successful advance and fires when the count is due.
func (k *killer) tick() {
	if k.after <= 0 || k.pid <= 0 {
		return
	}
	if k.count.Add(1) < k.after {
		return
	}
	k.once.Do(func() {
		proc, err := os.FindProcess(k.pid)
		if err == nil {
			err = proc.Kill()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrdload: kill pid %d: %v\n", k.pid, err)
			return
		}
		k.fired.Store(true)
		fmt.Printf("mrdload: killed pid %d after %d advances\n", k.pid, k.after)
	})
}

// hopStats folds every successful call's per-hop breakdown (parsed
// from the X-Mrd-* response headers) into router/shard/compute latency
// samples plus a traced-response tally.
type hopStats struct {
	mu      sync.Mutex
	router  []time.Duration
	shard   []time.Duration
	compute []time.Duration
	traced  int
	total   int
}

func (h *hopStats) add(hp client.Hops) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.total++
	if hp.TraceID != "" {
		h.traced++
	}
	if hp.RouterUs >= 0 {
		h.router = append(h.router, time.Duration(hp.RouterUs)*time.Microsecond)
	}
	if hp.ShardUs >= 0 {
		h.shard = append(h.shard, time.Duration(hp.ShardUs)*time.Microsecond)
	}
	if hp.ComputeUs >= 0 {
		h.compute = append(h.compute, time.Duration(hp.ComputeUs)*time.Microsecond)
	}
}

// report prints the per-hop breakdown next to the end-to-end latency
// percentiles; hops a tier never stamped (e.g. router with -addr) are
// omitted.
func (h *hopStats) report() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return
	}
	line := func(name string, d []time.Duration) {
		if len(d) == 0 {
			return
		}
		fmt.Printf("  %-8s p50 %v  p99 %v  (%d samples)\n", name, percentile(d, 50), percentile(d, 99), len(d))
	}
	fmt.Printf("per-hop:       %d/%d responses traced\n", h.traced, h.total)
	line("router", h.router)
	line("shard", h.shard)
	line("compute", h.compute)
}

// sessionResult is one worker's tally.
type sessionResult struct {
	workload   string
	advances   int
	checked    int
	mismatches []string
	latencies  []time.Duration
	err        error
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7788", "mrdserver base URL")
	shards := flag.String("shards", "", "comma-separated shard base URLs; non-empty switches to the consistent-hash failover client (overrides -addr)")
	sessions := flag.Int("sessions", 8, "concurrent sessions to run")
	group := flag.String("workload", "scc", "workload group (scc, hibench, mllib, all) or one workload name")
	parity := flag.Bool("parity", false, "cross-check every server decision against an in-process advisor")
	nodes := flag.Int("nodes", 4, "modeled worker nodes per session")
	cache := flag.Int64("cache", 128, "modeled per-node cache in MB")
	policyKind := flag.String("policy", "MRD", "cache policy kind for every session")
	killAfter := flag.Int64("kill-after", 0, "SIGKILL -kill-pid after this many successful advances (chaos mode; 0 disables)")
	killPid := flag.Int("kill-pid", 0, "process to SIGKILL in chaos mode")
	bin := flag.Bool("bin", false, "drive the binary frame protocol instead of JSON (server needs -frame-addr)")
	batch := flag.Bool("batch", false, "submit each job's steps as one batch call instead of per-step requests")
	retryWait := flag.Duration("retry-wait", 3*time.Second, "per-call retry wall-time cap (also the shard-failover detection latency)")
	traceCap := flag.Int("trace-capacity", 4*trace.DefaultCapacity, "client span ring capacity; 0 disables client-side tracing")
	traceOut := flag.String("trace-out", "", "write the client span export (JSONL) here at exit")
	traceChrome := flag.String("trace-chrome", "", "write the Chrome trace_event export here at exit")
	flag.Parse()

	names, ok := groups[strings.ToLower(*group)]
	if !ok {
		names = []string{*group}
	}
	advCfg := service.AdvisorConfig{
		Nodes:      *nodes,
		CacheBytes: *cache * cluster.MB,
		Policy:     experiments.PolicySpec{Kind: *policyKind},
	}

	var tracer *trace.Tracer
	if *traceCap > 0 {
		tracer = trace.NewTracer(*traceCap)
	}
	hops := &hopStats{}

	transport := "json"
	if *bin {
		transport = "bin"
	}
	shardList := splitList(*shards)
	var c api
	var sharded *client.Sharded
	if len(shardList) > 0 {
		sharded = client.NewSharded(client.ShardedConfig{
			Shards: shardList, MaxRetryWait: *retryWait,
			Tracer: tracer, OnHops: hops.add, Binary: *bin,
		})
		defer sharded.Close()
		c = sharded
		fmt.Printf("mrdload: %d sessions x %s (%d workloads) against %d shards (%s), policy %s, parity %v\n",
			*sessions, *group, len(names), len(shardList), transport, *policyKind, *parity)
	} else {
		cl := client.New(client.Config{
			BaseURL: *addr, MaxRetryWait: *retryWait,
			Tracer: tracer, OnHops: hops.add, Binary: *bin,
		})
		defer cl.Close()
		c = cl
		fmt.Printf("mrdload: %d sessions x %s (%d workloads) against %s (%s), policy %s, parity %v\n",
			*sessions, *group, len(names), *addr, transport, *policyKind, *parity)
	}
	chaos := &killer{after: *killAfter, pid: *killPid}

	start := time.Now()
	results := make([]sessionResult, *sessions)
	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds mean each session is "the same workflow over
			// new data" — the paper's recurring-application model.
			params := workload.Params{Seed: int64(i + 1)}
			// The sharded client needs client-chosen IDs: the ID decides
			// the owning shard before the session exists. The binary
			// transport wants them too — the hello frame's session ID is
			// what gives the connection routing affinity.
			id := ""
			if sharded != nil || *bin {
				id = fmt.Sprintf("load-%d", i+1)
			}
			results[i] = runSession(c, id, names[i%len(names)], params, advCfg, *parity, *batch, chaos)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var advances, checked, failed int
	var mismatches []string
	var latencies []time.Duration
	for _, r := range results {
		advances += r.advances
		checked += r.checked
		latencies = append(latencies, r.latencies...)
		mismatches = append(mismatches, r.mismatches...)
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "mrdload: session %s failed: %v\n", r.workload, r.err)
		}
	}

	okSessions := *sessions - failed
	fmt.Printf("sessions:      %d ok, %d failed (%.1f sessions/s)\n",
		okSessions, failed, float64(okSessions)/elapsed.Seconds())
	fmt.Printf("advice calls:  %d (%.1f calls/s)\n", advances, float64(advances)/elapsed.Seconds())
	fmt.Printf("latency:       p50 %v  p99 %v\n", percentile(latencies, 50), percentile(latencies, 99))
	hops.report()
	if sharded != nil {
		st := sharded.Stats()
		fmt.Printf("failovers:     %d (re-route p50 %v  p99 %v)\n", st.Failovers, st.RerouteP50, st.RerouteP99)
		for _, ev := range st.Reroutes {
			line := fmt.Sprintf("  re-route:    %s -> %s (%d ops replayed, %v)", ev.Session, ev.Owner, ev.Ops, ev.Latency)
			if ev.Trace != "" {
				line += " trace=" + ev.Trace
			}
			fmt.Println(line)
		}
		perShard := make([]string, 0, len(st.SessionsPerShard))
		for _, sh := range shardList {
			perShard = append(perShard, fmt.Sprintf("%s=%d", sh, st.SessionsPerShard[sh]))
		}
		fmt.Printf("shard owners:  %s\n", strings.Join(perShard, "  "))
	}
	if *parity {
		fmt.Printf("parity:        %d advice checked, %d mismatches\n", checked, len(mismatches))
		for i, m := range mismatches {
			if i == 5 {
				fmt.Fprintf(os.Stderr, "mrdload: ... %d more mismatches\n", len(mismatches)-5)
				break
			}
			fmt.Fprintf(os.Stderr, "mrdload: MISMATCH %s\n", m)
		}
	}
	exportTraces(tracer, *traceOut, *traceChrome)
	if failed > 0 || len(mismatches) > 0 {
		os.Exit(1)
	}
}

// exportTraces writes the client-side span exports (either path empty
// means skip). A nil tracer writes empty-but-valid files so scripted
// runs can rely on the artifact existing.
func exportTraces(tracer *trace.Tracer, jsonlPath, chromePath string) {
	write := func(path string, render func(f *os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrdload: trace export: %v\n", err)
			return
		}
		if err := render(f); err != nil {
			fmt.Fprintf(os.Stderr, "mrdload: trace export %s: %v\n", path, err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "mrdload: trace export %s: %v\n", path, err)
		}
	}
	spans := tracer.Spans()
	write(jsonlPath, func(f *os.File) error { return trace.WriteJSONL(f, spans) })
	write(chromePath, func(f *os.File) error { return trace.WriteChromeTrace(f, spans) })
	if jsonlPath != "" || chromePath != "" {
		total, dropped := tracer.Stats()
		fmt.Printf("traces:        exported %d spans (recorded %d, ring dropped %d)\n", len(spans), total, dropped)
	}
}

// runSession creates one server session, replays the workload's
// canonical schedule through the advisory API (per-step calls, or one
// batch call per job with batch set), and (under -parity) compares
// every advice fingerprint against the in-process oracle.
func runSession(c api, id, name string, params workload.Params, cfg service.AdvisorConfig, parity, batch bool, chaos *killer) sessionResult {
	res := sessionResult{workload: name}
	ctx := context.Background()

	spec, err := workload.Build(name, params)
	if err != nil {
		res.err = err
		return res
	}
	var oracle *service.Advisor
	if parity {
		// The oracle gets its own DAG instance: nothing is shared with the
		// request path, so agreement can only come from determinism.
		ospec, err := workload.Build(name, params)
		if err != nil {
			res.err = err
			return res
		}
		if oracle, err = service.NewAdvisor(ospec.Graph, cfg); err != nil {
			res.err = err
			return res
		}
	}

	created, err := c.CreateSession(ctx, service.CreateSessionRequest{ID: id, Workload: name, Params: params, Advisor: cfg})
	if err != nil {
		res.err = fmt.Errorf("create: %w", err)
		return res
	}
	defer c.DeleteSession(ctx, created.ID)

	if batch {
		return runBatchSession(c, created.ID, spec, oracle, res, chaos)
	}

	for _, st := range service.Schedule(spec.Graph) {
		if st.Stage < 0 {
			if _, err := c.SubmitJob(ctx, created.ID, st.Job); err != nil {
				res.err = fmt.Errorf("job %d: %w", st.Job, err)
				return res
			}
			if oracle != nil {
				if err := oracle.SubmitJob(st.Job); err != nil {
					res.err = err
					return res
				}
			}
			continue
		}
		t0 := time.Now()
		got, err := c.Advance(ctx, created.ID, st.Stage)
		res.latencies = append(res.latencies, time.Since(t0))
		if err != nil {
			res.err = fmt.Errorf("stage %d: %w", st.Stage, err)
			return res
		}
		res.advances++
		chaos.tick()
		if oracle != nil {
			want, err := oracle.Advance(st.Stage)
			if err != nil {
				res.err = err
				return res
			}
			res.checked++
			if g, w := got.Fingerprint(), want.Fingerprint(); g != w {
				res.mismatches = append(res.mismatches,
					fmt.Sprintf("%s seed=%d stage=%d\n  server: %s\n  oracle: %s", name, params.Seed, st.Stage, g, w))
			}
		}
	}
	return res
}

// runBatchSession replays the schedule one job per RunBatch call: the
// job's submit step plus every stage it creates, with the advices
// checked against the oracle in stream order.
func runBatchSession(c api, id string, spec *workload.Spec, oracle *service.Advisor, res sessionResult, chaos *killer) sessionResult {
	ctx := context.Background()
	sched := service.Schedule(spec.Graph)
	for start := 0; start < len(sched); {
		end := start + 1
		for end < len(sched) && sched[end].Stage >= 0 {
			end++
		}
		steps := sched[start:end]
		t0 := time.Now()
		resp, err := c.RunBatch(ctx, id, steps)
		res.latencies = append(res.latencies, time.Since(t0))
		if err != nil {
			res.err = fmt.Errorf("batch [%d:%d): %w", start, end, err)
			return res
		}
		res.advances += len(resp.Advices)
		for range resp.Advices {
			chaos.tick()
		}
		if oracle != nil {
			ai := 0
			for _, st := range steps {
				if st.Stage < 0 {
					if err := oracle.SubmitJob(st.Job); err != nil {
						res.err = err
						return res
					}
					continue
				}
				want, err := oracle.Advance(st.Stage)
				if err != nil {
					res.err = err
					return res
				}
				if ai >= len(resp.Advices) {
					res.mismatches = append(res.mismatches,
						fmt.Sprintf("%s seed=%d stage=%d\n  server: (missing advice)\n  oracle: %s", res.workload, spec.Params.Seed, st.Stage, want.Fingerprint()))
					continue
				}
				got := resp.Advices[ai]
				ai++
				res.checked++
				if g, w := got.Fingerprint(), want.Fingerprint(); g != w {
					res.mismatches = append(res.mismatches,
						fmt.Sprintf("%s seed=%d stage=%d\n  server: %s\n  oracle: %s", res.workload, spec.Params.Seed, st.Stage, g, w))
				}
			}
			if ai != len(resp.Advices) {
				res.mismatches = append(res.mismatches,
					fmt.Sprintf("%s seed=%d batch [%d:%d): %d advices for %d stage steps", res.workload, spec.Params.Seed, start, end, len(resp.Advices), ai))
			}
		}
		start = end
	}
	return res
}

// percentile returns the p-th percentile latency (nearest-rank).
func percentile(d []time.Duration, p int) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	ix := (len(s)*p + 99) / 100
	if ix > 0 {
		ix--
	}
	return s[ix]
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
