// Command profiles manages the store of recurring-application
// reference-distance profiles (paper §4.1): a first run profiles the
// application ad-hoc and saves the observed schedule; later runs load
// it and start with the whole DAG visible.
//
// Usage:
//
//	profiles -dir ./profiles list
//	profiles -dir ./profiles record -workload KM          # run ad-hoc, save profile
//	profiles -dir ./profiles show -workload KM
//	profiles -dir ./profiles compare -workload KM -cache 180M
//	profiles -dir ./profiles delete -workload KM
package main

import (
	"flag"
	"fmt"
	"os"

	"mrdspark"
	"mrdspark/internal/core"
	"mrdspark/internal/profile"
	"mrdspark/internal/refdist"
	"mrdspark/internal/sim"
)

func main() {
	dir := flag.String("dir", "./profiles", "profile store directory")
	wl := flag.String("workload", "", "workload name (record/show/compare/delete)")
	cacheMB := flag.Int64("cache", 180, "per-node cache in MB for record/compare runs")
	flag.Parse()

	store, err := profile.NewStore(*dir)
	if err != nil {
		fail(err)
	}
	cmd := flag.Arg(0)
	switch cmd {
	case "list", "":
		apps, err := store.Apps()
		if err != nil {
			fail(err)
		}
		if len(apps) == 0 {
			fmt.Println("no stored profiles")
			return
		}
		for _, app := range apps {
			e, _, err := store.Load(app)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-12s runs=%d complete=%v discrepancies=%d cachedRDDs=%d\n",
				e.App, e.Runs, e.Complete, e.Discrepancies, len(e.Profile.Creation))
		}
	case "record":
		run, prof := runOnce(*wl, *cacheMB, nil)
		entry, err := store.Save(*wl, prof.Observed(), true, prof.Discrepancies())
		if err != nil {
			fail(err)
		}
		fmt.Printf("recorded %s: JCT %v, hit %.1f%% (ad-hoc run %d)\n",
			*wl, run.JCTDuration(), 100*run.HitRatio(), entry.Runs)
	case "show":
		p, ok, err := store.LoadProfile(*wl)
		if err != nil {
			fail(err)
		}
		if !ok {
			fail(fmt.Errorf("no complete profile for %q (use record)", *wl))
		}
		fmt.Println(p)
		for _, id := range p.RDDs() {
			c, _ := p.Creation(id)
			fmt.Printf("  RDD%-4d created stage %-4d reads at stages %v\n", id, c.Stage, stagesOf(p, id))
		}
	case "compare":
		adhoc, _ := runOnce(*wl, *cacheMB, nil)
		stored, ok, err := store.LoadProfile(*wl)
		if err != nil {
			fail(err)
		}
		if !ok {
			fail(fmt.Errorf("no complete profile for %q (use record)", *wl))
		}
		rec, _ := runOnce(*wl, *cacheMB, stored)
		fmt.Printf("%s at %dM cache/node:\n", *wl, *cacheMB)
		fmt.Printf("  ad-hoc:    JCT %-12v hit %.1f%%\n", adhoc.JCTDuration(), 100*adhoc.HitRatio())
		fmt.Printf("  recurring: JCT %-12v hit %.1f%%  (%.0f%% of ad-hoc)\n",
			rec.JCTDuration(), 100*rec.HitRatio(), 100*float64(rec.JCT)/float64(adhoc.JCT))
	case "delete":
		if err := store.Delete(*wl); err != nil {
			fail(err)
		}
		fmt.Println("deleted", *wl)
	default:
		fail(fmt.Errorf("unknown command %q (list, record, show, compare, delete)", cmd))
	}
}

// runOnce simulates the workload with MRD: ad-hoc when stored is nil,
// recurring otherwise. It returns the run and the profiler used.
func runOnce(name string, cacheMB int64, stored *refdist.Profile) (mrdspark.Result, *core.AppProfiler) {
	if name == "" {
		fail(fmt.Errorf("-workload required"))
	}
	spec, err := mrdspark.BuildWorkload(name, mrdspark.WorkloadParams{})
	if err != nil {
		fail(err)
	}
	var prof *core.AppProfiler
	if stored == nil {
		prof = core.NewAppProfiler()
	} else {
		prof = core.NewRecurringProfiler(stored)
	}
	mgr := core.NewManager(spec.Graph, prof, core.Options{})
	cl := mrdspark.MainCluster().WithCache(cacheMB << 20)
	run, err := sim.Run(spec.Graph, cl, mgr, spec.Name)
	if err != nil {
		fail(err)
	}
	return run, prof
}

func stagesOf(p *refdist.Profile, id int) []int {
	var out []int
	for _, r := range p.Reads(id) {
		out = append(out, r.Stage)
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "profiles:", err)
	os.Exit(1)
}
