module mrdspark

go 1.22
