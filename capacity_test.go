package mrdspark

import "testing"

func TestCacheNeededFindsSmallerCacheForMRD(t *testing.T) {
	if testing.Short() {
		t.Skip("bisection runs many simulations")
	}
	const target = 0.75
	lruNeed, lruRun, err := CacheNeeded(Config{Workload: "SVD", Policy: "LRU"}, target)
	if err != nil {
		t.Fatal(err)
	}
	mrdNeed, mrdRun, err := CacheNeeded(Config{Workload: "SVD", Policy: "MRD"}, target)
	if err != nil {
		t.Fatal(err)
	}
	if lruRun.HitRatio() < target || mrdRun.HitRatio() < target {
		t.Fatalf("returned runs miss the target: LRU %.2f MRD %.2f", lruRun.HitRatio(), mrdRun.HitRatio())
	}
	// The paper's §5.6 cache-savings claim: MRD reaches the same hit
	// ratio with no more (and typically much less) cache.
	if mrdNeed > lruNeed {
		t.Errorf("MRD needs %d > LRU %d for hit %.0f%%", mrdNeed, lruNeed, 100*target)
	}
}

func TestCacheNeededErrors(t *testing.T) {
	if _, _, err := CacheNeeded(Config{Workload: "SP"}, 0); err == nil {
		t.Error("zero target accepted")
	}
	if _, _, err := CacheNeeded(Config{Workload: "SP"}, 1.5); err == nil {
		t.Error("target > 1 accepted")
	}
	if _, _, err := CacheNeeded(Config{}, 0.5); err == nil {
		t.Error("empty workload accepted")
	}
	// HB-Sort caches nothing: no hit ratio to plan for.
	if _, _, err := CacheNeeded(Config{Workload: "HB-Sort"}, 0.5); err == nil {
		t.Error("cache-free workload accepted")
	}
}

func TestCacheNeededUnreachableTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("bisection runs many simulations")
	}
	// TC's cached intermediates are mostly read zero or one time:
	// first-touch misses bound the hit ratio well below 100%... use a
	// target of 1.01-like 0.999 on a workload with unavoidable misses.
	_, best, err := CacheNeeded(Config{Workload: "HB-TeraSort", Policy: "LRU"}, 0.999)
	if err == nil {
		// Fine if reachable; then the run must actually reach it.
		if best.HitRatio() < 0.999 {
			t.Errorf("claimed reachable but run hit %.3f", best.HitRatio())
		}
	} else if best.JCT == 0 {
		t.Error("unreachable error must still return the best run")
	}
}
