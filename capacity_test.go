package mrdspark

import (
	"testing"

	"mrdspark/internal/experiments"
	"mrdspark/internal/workload"
)

func TestCacheNeededFindsSmallerCacheForMRD(t *testing.T) {
	if testing.Short() {
		t.Skip("bisection runs many simulations")
	}
	const target = 0.75
	lruNeed, lruRun, err := CacheNeeded(Config{Workload: "SVD", Policy: "LRU"}, target)
	if err != nil {
		t.Fatal(err)
	}
	mrdNeed, mrdRun, err := CacheNeeded(Config{Workload: "SVD", Policy: "MRD"}, target)
	if err != nil {
		t.Fatal(err)
	}
	if lruRun.HitRatio() < target || mrdRun.HitRatio() < target {
		t.Fatalf("returned runs miss the target: LRU %.2f MRD %.2f", lruRun.HitRatio(), mrdRun.HitRatio())
	}
	// The paper's §5.6 cache-savings claim: MRD reaches the same hit
	// ratio with no more (and typically much less) cache.
	if mrdNeed > lruNeed {
		t.Errorf("MRD needs %d > LRU %d for hit %.0f%%", mrdNeed, lruNeed, 100*target)
	}
}

// TestCacheNeededLoEndpoint pins the lower-endpoint probe: bisection
// shrinks the bracket towards lo = one largest block but never
// evaluates it, so when the smallest usable store already reaches the
// target, CacheNeeded must probe lo explicitly and return it rather
// than a bracket midpoint above it.
func TestCacheNeededLoEndpoint(t *testing.T) {
	spec, err := workload.Build("SVD", workload.Params{})
	if err != nil {
		t.Fatal(err)
	}
	var maxBlock int64
	for _, r := range spec.Graph.CachedRDDs() {
		if r.PartSize > maxBlock {
			maxBlock = r.PartSize
		}
	}
	cfg := Config{Workload: "SVD", Policy: "LRU"}
	// SVD under LRU hits ~15% with a single-block store; any target at
	// or below that must resolve to exactly lo.
	need, run, err := CacheNeeded(cfg, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if need != maxBlock {
		t.Errorf("CacheNeeded = %d; want the lo endpoint %d (one largest block)", need, maxBlock)
	}
	if run.HitRatio() < 0.10 {
		t.Errorf("returned run misses the target: hit %.3f", run.HitRatio())
	}
}

// TestCacheNeededMemoizesProbes pins the shared run cache: planning
// the same configuration twice must replay every probe from the
// memoized cache instead of re-simulating (the cache entry count does
// not grow on the second plan).
func TestCacheNeededMemoizesProbes(t *testing.T) {
	experiments.ResetRunCache()
	cfg := Config{Workload: "SVD", Policy: "LRU"}
	need1, _, err := CacheNeeded(cfg, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	n := experiments.RunCacheLen()
	if n == 0 {
		t.Fatal("first plan populated no memoized runs")
	}
	need2, _, err := CacheNeeded(cfg, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if need2 != need1 {
		t.Errorf("repeated plan disagrees: %d then %d", need1, need2)
	}
	if got := experiments.RunCacheLen(); got != n {
		t.Errorf("second identical plan grew the run cache %d -> %d; probes are not memoized", n, got)
	}
}

func TestCacheNeededErrors(t *testing.T) {
	if _, _, err := CacheNeeded(Config{Workload: "SP"}, 0); err == nil {
		t.Error("zero target accepted")
	}
	if _, _, err := CacheNeeded(Config{Workload: "SP"}, 1.5); err == nil {
		t.Error("target > 1 accepted")
	}
	if _, _, err := CacheNeeded(Config{}, 0.5); err == nil {
		t.Error("empty workload accepted")
	}
	// HB-Sort caches nothing: no hit ratio to plan for.
	if _, _, err := CacheNeeded(Config{Workload: "HB-Sort"}, 0.5); err == nil {
		t.Error("cache-free workload accepted")
	}
}

func TestCacheNeededUnreachableTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("bisection runs many simulations")
	}
	// TC's cached intermediates are mostly read zero or one time:
	// first-touch misses bound the hit ratio well below 100%... use a
	// target of 1.01-like 0.999 on a workload with unavoidable misses.
	_, best, err := CacheNeeded(Config{Workload: "HB-TeraSort", Policy: "LRU"}, 0.999)
	if err == nil {
		// Fine if reachable; then the run must actually reach it.
		if best.HitRatio() < 0.999 {
			t.Errorf("claimed reachable but run hit %.3f", best.HitRatio())
		}
	} else if best.JCT == 0 {
		t.Error("unreachable error must still return the best run")
	}
}
