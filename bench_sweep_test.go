package mrdspark

// Benchmarks for the sweep fabric: the cold path (every grid point
// simulated) and the warm path (every point replayed from the memoized
// run cache). The gap between the two is the value of the persistent
// cache — a warm re-run of the full grid should cost aggregation and
// rendering, not simulation.

import (
	"testing"

	"mrdspark/internal/cluster"
	"mrdspark/internal/experiments"
)

// benchSweepConfig is a small fixed grid (12 points) so the cold
// benchmark stays affordable while still crossing every axis.
func benchSweepConfig() experiments.SweepConfig {
	return experiments.SweepConfig{
		Workloads: []string{"KM", "CC"},
		Seeds:     []int64{0},
		Clusters:  []cluster.Config{cluster.Main()},
		Fractions: []float64{0.6},
		Policies:  []experiments.PolicySpec{experiments.SpecLRU, experiments.SpecLRC, experiments.SpecMRD},
		Presets:   []string{"healthy", "crash"},
		Repls:     []int{1},
	}
}

func BenchmarkSweepGridCold(b *testing.B) {
	cfg := benchSweepConfig()
	want := len(cfg.Grid())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		res, err := experiments.RunSweep(cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != want {
			b.Fatalf("sweep produced %d rows, want %d", len(res.Rows), want)
		}
	}
	b.StopTimer()
	experiments.ResetRunCache()
}

func BenchmarkSweepGridWarm(b *testing.B) {
	cfg := benchSweepConfig()
	want := len(cfg.Grid())
	experiments.ResetRunCache()
	if _, err := experiments.RunSweep(cfg, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSweep(cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != want {
			b.Fatalf("sweep produced %d rows, want %d", len(res.Rows), want)
		}
	}
	b.StopTimer()
	experiments.ResetRunCache()
}
