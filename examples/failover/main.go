// Fault tolerance (paper §4.4): kill a worker node mid-run and watch
// the system recover — lost blocks recompute from lineage, and the
// MRDmanager re-issues the reference-distance table to the replacement
// CacheMonitor.
package main

import (
	"fmt"
	"log"

	"mrdspark"
	"mrdspark/internal/core"
	"mrdspark/internal/refdist"
	"mrdspark/internal/sim"
)

func main() {
	spec, err := mrdspark.BuildWorkload("CC", mrdspark.WorkloadParams{})
	if err != nil {
		log.Fatal(err)
	}
	cl := mrdspark.MainCluster().WithCache(400 << 20)

	// Healthy baseline.
	healthy, err := mrdspark.Run(mrdspark.Config{Workload: "CC", Policy: "MRD", CachePerNode: 400 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// Same run, but node 3 dies just before the 8th executed stage
	// (memory, local disk and monitor state all lost).
	mgr := core.NewManager(spec.Graph,
		core.NewRecurringProfiler(refdist.FromGraph(spec.Graph)), core.Options{})
	s, err := sim.New(spec.Graph, cl, mgr, spec.Name)
	if err != nil {
		log.Fatal(err)
	}
	s.SetOptions(sim.Options{FailNode: 3, FailAtStage: 8})
	failed := s.Run()

	fmt.Printf("ConnectedComponents under MRD, %d nodes:\n\n", cl.Nodes)
	fmt.Printf("  healthy run:   JCT %-12v hit %5.1f%%  recomputes %d\n",
		healthy.JCTDuration(), 100*healthy.HitRatio(), healthy.Recomputes)
	fmt.Printf("  node 3 lost:   JCT %-12v hit %5.1f%%  recomputes %d\n",
		failed.JCTDuration(), 100*failed.HitRatio(), failed.Recomputes)
	st := mgr.Stats()
	fmt.Printf("\nmanager fault handling: MRD_Table re-issued %d time(s) to the replacement monitor\n",
		st.TableReissues)
	fmt.Printf("slowdown from the failure: %.1f%%\n",
		100*(float64(failed.JCT)/float64(healthy.JCT)-1))
}
