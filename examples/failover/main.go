// Fault tolerance (paper §4.4): kill a worker node mid-run and watch
// the system recover — lost blocks recompute from lineage (or come
// back from surviving replicas when the schedule replicates), and the
// MRDmanager re-issues the reference-distance table to the replacement
// CacheMonitor.
package main

import (
	"fmt"
	"log"

	"mrdspark"
	"mrdspark/internal/core"
	"mrdspark/internal/fault"
	"mrdspark/internal/refdist"
	"mrdspark/internal/sim"
)

func main() {
	spec, err := mrdspark.BuildWorkload("CC", mrdspark.WorkloadParams{})
	if err != nil {
		log.Fatal(err)
	}
	cl := mrdspark.MainCluster().WithCache(400 << 20)

	// Healthy baseline.
	healthy, err := mrdspark.Run(mrdspark.Config{Workload: "CC", Policy: "MRD", CachePerNode: 400 << 20})
	if err != nil {
		log.Fatal(err)
	}

	// Same run, but node 3 dies just before the 8th executed stage
	// (memory, local disk and monitor state all lost). Once without
	// replication — everything the node held recomputes from lineage —
	// and once with replication factor 2, where surviving replica
	// copies absorb most of the loss.
	runCrash := func(replication int) (mrdspark.Result, core.Stats) {
		mgr := core.NewManager(spec.Graph,
			core.NewRecurringProfiler(refdist.FromGraph(spec.Graph)), core.Options{})
		s, err := sim.New(spec.Graph, cl, mgr, spec.Name)
		if err != nil {
			log.Fatal(err)
		}
		sched := fault.Crash(3, 8)
		sched.Replication = replication
		if err := s.SetOptions(sim.Options{Fault: sched}); err != nil {
			log.Fatal(err)
		}
		return s.Run(), mgr.Stats()
	}
	failed, st := runCrash(1)
	replicated, _ := runCrash(2)

	fmt.Printf("ConnectedComponents under MRD, %d nodes:\n\n", cl.Nodes)
	row := func(label string, r mrdspark.Result) {
		fmt.Printf("  %-22s JCT %-12v hit %5.1f%%  recomputes %-4d replica hits %d\n",
			label, r.JCTDuration(), 100*r.HitRatio(), r.Recomputes, r.ReplicaHits)
	}
	row("healthy run:", healthy)
	row("node 3 lost:", failed)
	row("node 3 lost, repl=2:", replicated)
	fmt.Printf("\nmanager fault handling: MRD_Table re-issued %d time(s) to the replacement monitor\n",
		st.TableReissues)
	fmt.Printf("slowdown from the failure: %.1f%% unreplicated, %.1f%% with replication\n",
		100*(float64(failed.JCT)/float64(healthy.JCT)-1),
		100*(float64(replicated.JCT)/float64(healthy.JCT)-1))
}
