// Quickstart: run one benchmark workload under Spark's default LRU and
// under MRD on the paper's main cluster, and compare.
package main

import (
	"fmt"
	"log"

	"mrdspark"
)

func main() {
	cfg := mrdspark.Config{
		Workload:     "SCC",                  // StronglyConnectedComponents, the paper's best case
		Cluster:      mrdspark.MainCluster(), // 25 nodes, 4 cores, 500 Mbps (Table 4)
		CachePerNode: 160 << 20,              // squeeze the storage pool so eviction matters
	}

	cfg.Policy = "LRU"
	lru, err := mrdspark.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Policy = "MRD"
	mrd, err := mrdspark.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s on %d nodes, %d MB cache per node\n",
		cfg.Workload, cfg.Cluster.Nodes, cfg.CachePerNode>>20)
	fmt.Printf("  LRU: JCT %-12v hit ratio %5.1f%%  recomputes %d\n",
		lru.JCTDuration(), 100*lru.HitRatio(), lru.Recomputes)
	fmt.Printf("  MRD: JCT %-12v hit ratio %5.1f%%  recomputes %d  purged %d\n",
		mrd.JCTDuration(), 100*mrd.HitRatio(), mrd.Recomputes, mrd.PurgedBlocks)
	fmt.Printf("  normalized JCT: %.0f%% of LRU (lower is better)\n",
		100*float64(mrd.JCT)/float64(lru.JCT))
}
