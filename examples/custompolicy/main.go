// Custom policy: plug your own cache policy into the simulator and
// race it against the built-ins. The example implements "LRD" (least
// reference distance — deliberately inverted MRD) and a size-aware
// policy that evicts the largest block first, then runs both on
// ConnectedComponents next to LRU and MRD.
//
// A policy implements mrdspark.Policy for per-node decisions; the
// factory can additionally implement the observer interfaces in
// internal/policy to receive DAG and stage events.
package main

import (
	"fmt"
	"log"

	"mrdspark"
	"mrdspark/internal/block"
	"mrdspark/internal/dag"
	"mrdspark/internal/refdist"
)

// sizeFirst evicts the biggest resident block. Shared across nodes is
// nothing; the factory mints independent node policies.
type sizeFirst struct {
	sizes map[int]int64 // RDD -> partition size, from the DAG
}

func (s *sizeFirst) Name() string { return "BiggestFirst" }

func (s *sizeFirst) NewNodePolicy(int) mrdspark.Policy {
	return &sizeFirstNode{shared: s, resident: map[block.ID]bool{}}
}

type sizeFirstNode struct {
	shared   *sizeFirst
	resident map[block.ID]bool
}

func (n *sizeFirstNode) OnAdd(id block.ID)    { n.resident[id] = true }
func (n *sizeFirstNode) OnAccess(id block.ID) {}
func (n *sizeFirstNode) OnRemove(id block.ID) { delete(n.resident, id) }

func (n *sizeFirstNode) Victim(evictable func(block.ID) bool) (block.ID, bool) {
	best, found := block.ID{}, false
	var bestSize int64 = -1
	for id := range n.resident {
		if !evictable(id) {
			continue
		}
		size := n.shared.sizes[id.RDD]
		if size > bestSize || (size == bestSize && best.Less(id)) {
			best, bestSize, found = id, size, true
		}
	}
	return best, found
}

// lrd is the pathological twin of MRD: it evicts the block that will
// be referenced SOONEST. Racing it shows how much the eviction
// direction itself matters.
type lrd struct {
	profile  *refdist.Profile
	curStage int
}

func (l *lrd) Name() string                { return "LRD(inverted)" }
func (l *lrd) OnStageStart(stageID, _ int) { l.curStage = stageID }

func (l *lrd) NewNodePolicy(int) mrdspark.Policy {
	return &lrdNode{shared: l, resident: map[block.ID]bool{}}
}

type lrdNode struct {
	shared   *lrd
	resident map[block.ID]bool
}

func (n *lrdNode) OnAdd(id block.ID)    { n.resident[id] = true }
func (n *lrdNode) OnAccess(id block.ID) {}
func (n *lrdNode) OnRemove(id block.ID) { delete(n.resident, id) }

func (n *lrdNode) Victim(evictable func(block.ID) bool) (block.ID, bool) {
	best, found := block.ID{}, false
	bestDist := int(^uint(0) >> 1)
	for id := range n.resident {
		if !evictable(id) {
			continue
		}
		d := n.shared.profile.StageDistance(id.RDD, n.shared.curStage)
		if refdist.IsInfinite(d) {
			d = bestDist // dead blocks are the last LRD evicts (!)
		}
		if d < bestDist || (d == bestDist && !found) || (d == bestDist && best.Less(id)) {
			best, bestDist, found = id, d, true
		}
	}
	return best, found
}

func main() {
	spec, err := mrdspark.BuildWorkload("CC", mrdspark.WorkloadParams{})
	if err != nil {
		log.Fatal(err)
	}
	cl := mrdspark.MainCluster().WithCache(420 << 20)

	sizes := map[int]int64{}
	var graph *dag.Graph = spec.Graph
	for _, r := range graph.RDDs {
		sizes[r.ID] = r.PartSize
	}
	custom := []mrdspark.PolicyFactory{
		&sizeFirst{sizes: sizes},
		&lrd{profile: refdist.FromGraph(graph)},
	}

	fmt.Printf("%-16s %-12s %-8s %s\n", "policy", "JCT", "hit", "recomputes")
	for _, name := range []string{"LRU", "MRD"} {
		run, err := mrdspark.Run(mrdspark.Config{Workload: "CC", Policy: name, CachePerNode: 420 << 20})
		if err != nil {
			log.Fatal(err)
		}
		report(run)
	}
	for _, f := range custom {
		run, err := mrdspark.RunGraphWith(spec.Graph, spec.Name, cl, f)
		if err != nil {
			log.Fatal(err)
		}
		report(run)
	}
}

func report(run mrdspark.Result) {
	fmt.Printf("%-16s %-12v %-7.1f%% %d\n", run.Policy, run.JCTDuration(), 100*run.HitRatio(), run.Recomputes)
}
