// PageRank bakeoff: sweep cache sizes for the PR workload (the
// I/O-intensive web-search benchmark the paper's intro motivates) and
// print how each policy's runtime and hit ratio respond — a compact
// version of the paper's Figs 4 and 7.
package main

import (
	"fmt"
	"log"

	"mrdspark"
)

func main() {
	policies := []string{"LRU", "LFU", "LRC", "MemTune", "MRD-evict", "MRD"}
	caches := []int64{64 << 20, 96 << 20, 128 << 20, 192 << 20, 256 << 20}

	fmt.Printf("%-10s", "cache/node")
	for _, p := range policies {
		fmt.Printf("  %-18s", p)
	}
	fmt.Println()

	for _, cache := range caches {
		fmt.Printf("%-10s", fmt.Sprintf("%dM", cache>>20))
		for _, p := range policies {
			run, err := mrdspark.Run(mrdspark.Config{
				Workload:     "PR",
				Policy:       p,
				CachePerNode: cache,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s", fmt.Sprintf("%7v %5.1f%%", run.JCTDuration().Round(1e6), 100*run.HitRatio()))
		}
		fmt.Println()
	}
	fmt.Println("\ncells: job completion time, cache hit ratio")
}
