// Recurring applications: the paper's §4.1/§5.8 workflow end to end.
// The first run of K-Means is ad-hoc — MRD learns the DAG one job at a
// time and every cross-job reference initially looks infinite. The
// observed profile is saved to a store; the second run loads it and
// starts with the whole application DAG visible.
package main

import (
	"fmt"
	"log"
	"os"

	"mrdspark"
	"mrdspark/internal/core"
	"mrdspark/internal/profile"
	"mrdspark/internal/refdist"
	"mrdspark/internal/sim"
)

func main() {
	dir, err := os.MkdirTemp("", "mrd-profiles")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := profile.NewStore(dir)
	if err != nil {
		log.Fatal(err)
	}

	const app = "KM-default"
	cl := mrdspark.MainCluster().WithCache(180 << 20)
	spec, err := mrdspark.BuildWorkload("KM", mrdspark.WorkloadParams{})
	if err != nil {
		log.Fatal(err)
	}

	// First run: no stored profile, so the AppProfiler runs ad-hoc.
	stored, ok, err := store.LoadProfile(app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first run:  stored profile found: %v\n", ok)
	prof := core.NewAppProfiler()
	mgr := core.NewManager(spec.Graph, prof, core.Options{})
	run1, err := sim.Run(spec.Graph, cl, mgr, spec.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ad-hoc:    JCT %v, hit %.1f%%\n", run1.JCTDuration(), 100*run1.HitRatio())

	// Persist what the profiler observed.
	if _, err := store.Save(app, prof.Observed(), true, prof.Discrepancies()); err != nil {
		log.Fatal(err)
	}

	// Second run: load the profile, run in recurring mode.
	stored, ok, err = store.LoadProfile(app)
	if err != nil || !ok {
		log.Fatalf("expected a stored profile, got ok=%v err=%v", ok, err)
	}
	fmt.Printf("second run: stored profile found: %v (%s)\n", ok, stored)
	prof2 := core.NewRecurringProfiler(stored)
	mgr2 := core.NewManager(spec.Graph, prof2, core.Options{})
	run2, err := sim.Run(spec.Graph, cl, mgr2, spec.Name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recurring: JCT %v, hit %.1f%% (discrepancies: %d)\n",
		run2.JCTDuration(), 100*run2.HitRatio(), prof2.Discrepancies())

	// The paper's §5.8 point: recurring-mode K-Means should beat the
	// ad-hoc first run, because KM's 17 jobs hide most references
	// behind job boundaries.
	fmt.Printf("recurring vs ad-hoc JCT: %.0f%%\n", 100*float64(run2.JCT)/float64(run1.JCT))

	// Sanity: the stored profile round-trips exactly.
	if !stored.Equal(refdist.FromData(prof.Observed().Data())) {
		fmt.Println("WARNING: stored profile does not match the observation")
	}
}
