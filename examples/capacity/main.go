// Capacity planning: the paper's §5.6 cache-savings result as a tool.
// For each policy, find the smallest per-node cache that reaches a
// target hit ratio on SVD++ — the workload of the paper's Fig 7 —
// and report the savings MRD buys.
package main

import (
	"fmt"
	"log"

	"mrdspark"
)

func main() {
	const target = 0.80
	fmt.Printf("smallest per-node cache reaching %.0f%% hit ratio on SVD++ (%d nodes):\n\n",
		100*target, mrdspark.MainCluster().Nodes)

	type result struct {
		policy string
		need   int64
		run    mrdspark.Result
	}
	var results []result
	for _, p := range []string{"LRU", "LRC", "MRD"} {
		need, run, err := mrdspark.CacheNeeded(mrdspark.Config{Workload: "SVD", Policy: p}, target)
		if err != nil {
			log.Fatalf("%s: %v", p, err)
		}
		results = append(results, result{p, need, run})
		fmt.Printf("  %-4s %6.1f MB/node  (hit %.1f%%, JCT %v)\n",
			p, float64(need)/(1<<20), 100*run.HitRatio(), run.JCTDuration())
	}

	lru, mrd := results[0], results[len(results)-1]
	fmt.Printf("\nMRD cache-space savings vs LRU: %.0f%%", 100*(1-float64(mrd.need)/float64(lru.need)))
	fmt.Printf("  (paper reports 63%% for its 68%% target on its testbed)\n")
}
