package mrdspark

// Service-side benchmarks: the cost of taking advice over HTTP rather
// than in process, and the tax of the tracing layer on the request
// path. BenchmarkServiceStatusUntraced doubles as the zero-alloc guard
// for the disabled tracer — the service discipline mirrors obs.Emit's.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"mrdspark/internal/cluster"
	"mrdspark/internal/experiments"
	"mrdspark/internal/obs/trace"
	"mrdspark/internal/service"
	"mrdspark/internal/workload"
)

// benchServe drives one request through the full middleware stack and
// fails the benchmark on a non-2xx status.
func benchServe(b *testing.B, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			b.Fatal(err)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, &buf))
	if rec.Code/100 != 2 {
		b.Fatalf("%s %s: %d %s", method, path, rec.Code, rec.Body.String())
	}
	return rec
}

func benchAdvisorConfig() service.AdvisorConfig {
	return service.AdvisorConfig{Nodes: 4, CacheBytes: 64 * cluster.MB, Policy: experiments.SpecMRD}
}

// BenchmarkServiceSession measures a full SCC advisory session through
// the HTTP handler stack — create, submit every job, take advice at
// every stage boundary — and reports advice throughput.
func BenchmarkServiceSession(b *testing.B) {
	srv := service.NewServer(service.ServerConfig{})
	defer srv.Close()
	h := srv.Handler()
	spec, err := workload.Build("SCC", workload.Params{})
	if err != nil {
		b.Fatal(err)
	}
	steps := service.Schedule(spec.Graph)
	advances := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench-%d", i)
		benchServe(b, h, http.MethodPost, "/v1/sessions",
			service.CreateSessionRequest{ID: id, Workload: "SCC", Advisor: benchAdvisorConfig()})
		for _, st := range steps {
			if st.Stage < 0 {
				benchServe(b, h, http.MethodPost, "/v1/sessions/"+id+"/jobs",
					service.SubmitJobRequest{Job: st.Job})
				continue
			}
			benchServe(b, h, http.MethodPost, "/v1/sessions/"+id+"/stage",
				service.AdvanceRequest{Stage: st.Stage})
			advances++
		}
		benchServe(b, h, http.MethodDelete, "/v1/sessions/"+id, nil)
	}
	b.StopTimer()
	b.ReportMetric(float64(advances)/b.Elapsed().Seconds(), "advice/s")
}

// benchStatusServer boots a server with one live session and returns
// the handler plus the hot status path.
func benchStatusServer(b *testing.B, tracer *trace.Tracer) (http.Handler, string) {
	srv := service.NewServer(service.ServerConfig{Trace: service.TraceConfig{Tracer: tracer}})
	b.Cleanup(srv.Close)
	h := srv.Handler()
	benchServe(b, h, http.MethodPost, "/v1/sessions",
		service.CreateSessionRequest{ID: "bench-status", Workload: "SCC", Advisor: benchAdvisorConfig()})
	return h, "/v1/sessions/bench-status"
}

// BenchmarkServiceStatusUntraced is the hot read path with tracing off.
// The disabled tracer must add zero allocations over the handler's own
// work; the delta to BenchmarkServiceStatusTraced is the span tax.
func BenchmarkServiceStatusUntraced(b *testing.B) {
	h, path := benchStatusServer(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServe(b, h, http.MethodGet, path, nil)
	}
}

// BenchmarkServiceStatusTraced is the same path with a live tracer
// recording a root span per request.
func BenchmarkServiceStatusTraced(b *testing.B) {
	h, path := benchStatusServer(b, trace.NewTracer(trace.DefaultCapacity))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServe(b, h, http.MethodGet, path, nil)
	}
}

// BenchmarkTraceSpanDisabled is the acceptance guard for the tracer
// itself: a nil *trace.Tracer's Start/End must cost a nil check and
// zero allocations, matching the obs.Emit discipline, so shipping the
// instrumentation everywhere is free until someone turns it on.
func BenchmarkTraceSpanDisabled(b *testing.B) {
	var tr *trace.Tracer
	parent := trace.SpanContext{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(parent, "disabled")
		sp.End()
	}
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(parent, "disabled")
		sp.End()
	}); n != 0 {
		b.Fatalf("disabled tracer allocates %.1f per span", n)
	}
}
