package mrdspark

// Service-side benchmarks: the cost of taking advice over HTTP rather
// than in process, and the tax of the tracing layer on the request
// path. BenchmarkServiceStatusUntraced doubles as the zero-alloc guard
// for the disabled tracer — the service discipline mirrors obs.Emit's.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"mrdspark/internal/cluster"
	"mrdspark/internal/experiments"
	"mrdspark/internal/obs/trace"
	"mrdspark/internal/service"
	"mrdspark/internal/service/client"
	"mrdspark/internal/workload"
)

// benchServe drives one request through the full middleware stack and
// fails the benchmark on a non-2xx status.
func benchServe(b *testing.B, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			b.Fatal(err)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, &buf))
	if rec.Code/100 != 2 {
		b.Fatalf("%s %s: %d %s", method, path, rec.Code, rec.Body.String())
	}
	return rec
}

func benchAdvisorConfig() service.AdvisorConfig {
	return service.AdvisorConfig{Nodes: 4, CacheBytes: 64 * cluster.MB, Policy: experiments.SpecMRD}
}

// BenchmarkServiceSession measures a full SCC advisory session through
// the HTTP handler stack — create, submit every job, take advice at
// every stage boundary — and reports advice throughput.
func BenchmarkServiceSession(b *testing.B) {
	srv := service.NewServer(service.ServerConfig{})
	defer srv.Close()
	h := srv.Handler()
	spec, err := workload.Build("SCC", workload.Params{})
	if err != nil {
		b.Fatal(err)
	}
	steps := service.Schedule(spec.Graph)
	advances := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench-%d", i)
		benchServe(b, h, http.MethodPost, "/v1/sessions",
			service.CreateSessionRequest{ID: id, Workload: "SCC", Advisor: benchAdvisorConfig()})
		for _, st := range steps {
			if st.Stage < 0 {
				benchServe(b, h, http.MethodPost, "/v1/sessions/"+id+"/jobs",
					service.SubmitJobRequest{Job: st.Job})
				continue
			}
			benchServe(b, h, http.MethodPost, "/v1/sessions/"+id+"/stage",
				service.AdvanceRequest{Stage: st.Stage})
			advances++
		}
		benchServe(b, h, http.MethodDelete, "/v1/sessions/"+id, nil)
	}
	b.StopTimer()
	b.ReportMetric(float64(advances)/b.Elapsed().Seconds(), "advice/s")
}

// benchWireServer boots a server on real TCP loopback for both
// transports and returns JSON and binary clients against it. Both
// clients cross a real socket, so the delta between them is protocol
// cost, not a loopback-vs-in-process artifact.
func benchWireServer(b *testing.B) (*client.Client, *client.Client) {
	b.Helper()
	srv := service.NewServer(service.ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.ServeFrames(ln)
	b.Cleanup(func() {
		ln.Close()
		ts.Close()
		srv.Close()
	})
	jsonC := client.New(client.Config{BaseURL: ts.URL})
	binC := client.New(client.Config{BaseURL: ts.URL, Binary: true, FrameAddr: ln.Addr().String()})
	b.Cleanup(binC.Close)
	return jsonC, binC
}

// benchReplaySession creates a session and advances one stage once, so
// every subsequent advance of that stage is served from the replay log:
// the policy compute rounds to zero and what remains is transport —
// encode, socket, dispatch, decode. That is the honest protocol
// comparison; a full session is compute-bound (~64% policy work per
// advance) and caps any transport at ~4x. See DESIGN.md §14.
func benchReplaySession(b *testing.B, c *client.Client, id string) int {
	b.Helper()
	ctx := context.Background()
	if _, err := c.CreateSession(ctx, service.CreateSessionRequest{
		ID: id, Workload: "SCC", Advisor: benchAdvisorConfig(),
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := c.SubmitJob(ctx, id, 0); err != nil {
		b.Fatal(err)
	}
	spec, err := workload.Build("SCC", workload.Params{})
	if err != nil {
		b.Fatal(err)
	}
	stage := spec.Graph.Jobs[0].NewStages[0].ID
	if _, err := c.Advance(ctx, id, stage); err != nil {
		b.Fatal(err)
	}
	return stage
}

// BenchmarkServiceSessionWire is BenchmarkServiceSession's counterpart
// over the frame protocol: a full SCC session — create, submit, advise
// every stage boundary, delete — per iteration, across a real TCP
// connection.
func BenchmarkServiceSessionWire(b *testing.B) {
	_, binC := benchWireServer(b)
	ctx := context.Background()
	spec, err := workload.Build("SCC", workload.Params{})
	if err != nil {
		b.Fatal(err)
	}
	steps := service.Schedule(spec.Graph)
	advances := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench-wire-%d", i)
		if _, err := binC.CreateSession(ctx, service.CreateSessionRequest{
			ID: id, Workload: "SCC", Advisor: benchAdvisorConfig(),
		}); err != nil {
			b.Fatal(err)
		}
		for _, st := range steps {
			if st.Stage < 0 {
				if _, err := binC.SubmitJob(ctx, id, st.Job); err != nil {
					b.Fatal(err)
				}
				continue
			}
			if _, err := binC.Advance(ctx, id, st.Stage); err != nil {
				b.Fatal(err)
			}
			advances++
		}
		if err := binC.DeleteSession(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(advances)/b.Elapsed().Seconds(), "advice/s")
}

// BenchmarkServiceAdviceJSON is the per-advice cost of the JSON
// transport on the replayed-advance path (compute ≈ 0).
func BenchmarkServiceAdviceJSON(b *testing.B) {
	jsonC, _ := benchWireServer(b)
	stage := benchReplaySession(b, jsonC, "bench-adv-json")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jsonC.Advance(ctx, "bench-adv-json", stage); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "advice/s")
}

// BenchmarkServiceAdviceWire is the same replayed advance over one
// frame round trip per advice.
func BenchmarkServiceAdviceWire(b *testing.B) {
	_, binC := benchWireServer(b)
	stage := benchReplaySession(b, binC, "bench-adv-wire")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binC.Advance(ctx, "bench-adv-wire", stage); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "advice/s")
}

// BenchmarkServiceAdviceWireBatch amortizes the round trip: 512
// replayed advances per OpBatch call, advice frames streamed back.
// One op is one advice, so advice/s (and ns/op) compare directly with
// the per-call benchmarks above.
func BenchmarkServiceAdviceWireBatch(b *testing.B) {
	_, binC := benchWireServer(b)
	stage := benchReplaySession(b, binC, "bench-adv-batch")
	ctx := context.Background()
	const chunk = 512
	steps := make([]service.Step, chunk)
	for i := range steps {
		steps[i] = service.Step{Job: 0, Stage: stage}
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		n := b.N - done
		if n > chunk {
			n = chunk
		}
		resp, err := binC.RunBatch(ctx, "bench-adv-batch", steps[:n])
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Advices) != n {
			b.Fatalf("batch returned %d advices, want %d", len(resp.Advices), n)
		}
		done += n
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "advice/s")
}

// benchStatusServer boots a server with one live session and returns
// the handler plus the hot status path.
func benchStatusServer(b *testing.B, tracer *trace.Tracer) (http.Handler, string) {
	srv := service.NewServer(service.ServerConfig{Trace: service.TraceConfig{Tracer: tracer}})
	b.Cleanup(srv.Close)
	h := srv.Handler()
	benchServe(b, h, http.MethodPost, "/v1/sessions",
		service.CreateSessionRequest{ID: "bench-status", Workload: "SCC", Advisor: benchAdvisorConfig()})
	return h, "/v1/sessions/bench-status"
}

// BenchmarkServiceStatusUntraced is the hot read path with tracing off.
// The disabled tracer must add zero allocations over the handler's own
// work; the delta to BenchmarkServiceStatusTraced is the span tax.
func BenchmarkServiceStatusUntraced(b *testing.B) {
	h, path := benchStatusServer(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServe(b, h, http.MethodGet, path, nil)
	}
}

// BenchmarkServiceStatusTraced is the same path with a live tracer
// recording a root span per request.
func BenchmarkServiceStatusTraced(b *testing.B) {
	h, path := benchStatusServer(b, trace.NewTracer(trace.DefaultCapacity))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServe(b, h, http.MethodGet, path, nil)
	}
}

// BenchmarkTraceSpanDisabled is the acceptance guard for the tracer
// itself: a nil *trace.Tracer's Start/End must cost a nil check and
// zero allocations, matching the obs.Emit discipline, so shipping the
// instrumentation everywhere is free until someone turns it on.
func BenchmarkTraceSpanDisabled(b *testing.B) {
	var tr *trace.Tracer
	parent := trace.SpanContext{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(parent, "disabled")
		sp.End()
	}
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(parent, "disabled")
		sp.End()
	}); n != 0 {
		b.Fatalf("disabled tracer allocates %.1f per span", n)
	}
}
