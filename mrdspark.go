// Package mrdspark is a faithful, self-contained reproduction of
// "Reference-distance Eviction and Prefetching for Cache Management in
// Spark" (Perez, Zhou, Cheng — ICPP 2018): the Most Reference Distance
// (MRD) cache-management policy, the Spark-like DAG/stage/cache
// substrate it lives in, the baseline policies it is evaluated against
// (LRU, LRC, MemTune, Belady's MIN), the twenty benchmark workloads of
// the paper's Tables 1 and 3, and a deterministic discrete-event
// cluster simulator that regenerates every table and figure of the
// paper's evaluation.
//
// This root package is the stable entry point: build a workload (or
// your own DAG via the Graph API), pick a cluster and a policy, and
// Run it:
//
//	run, err := mrdspark.Run(mrdspark.Config{
//		Workload: "PR",
//		Cluster:  mrdspark.MainCluster(),
//		Policy:   "MRD",
//	})
//	fmt.Println(run.JCTDuration(), run.HitRatio())
//
// The internal packages expose the full machinery for finer control;
// the experiments CLI (cmd/experiments) regenerates the paper's
// artifacts.
package mrdspark

import (
	"fmt"
	"io"
	"sort"

	"mrdspark/internal/cluster"
	"mrdspark/internal/core"
	"mrdspark/internal/dag"
	"mrdspark/internal/fault"
	"mrdspark/internal/metrics"
	"mrdspark/internal/obs"
	"mrdspark/internal/policy"
	"mrdspark/internal/refdist"
	"mrdspark/internal/sim"
	"mrdspark/internal/workload"
)

// Re-exported types, so typical users never import internal packages.
type (
	// Result holds the metrics of one simulated application run.
	Result = metrics.Run
	// ClusterConfig describes the simulated cluster.
	ClusterConfig = cluster.Config
	// Graph is an application DAG built with the RDD transformation
	// API (see NewGraph).
	Graph = dag.Graph
	// RDD is a cost-annotated dataset in a Graph.
	RDD = dag.RDD
	// Policy is a per-node eviction policy; implement it (and
	// optionally the observer interfaces in internal/policy) to plug
	// a custom policy into the simulator via RunGraph.
	Policy = policy.Policy
	// PolicyFactory mints per-node policies.
	PolicyFactory = policy.Factory
	// WorkloadParams parameterizes the benchmark generators.
	WorkloadParams = workload.Params
	// WorkloadSpec is a generated benchmark workload.
	WorkloadSpec = workload.Spec
	// MRDOptions configures the MRD policy variants.
	MRDOptions = core.Options
	// FaultSchedule is a deterministic fault-injection schedule: node
	// crashes (with optional rejoin), stragglers, lost or corrupt
	// blocks, flaky fetches, and the replication factor that bounds
	// their blast radius.
	FaultSchedule = fault.Schedule
	// FaultEvent is one scheduled fault.
	FaultEvent = fault.Event
)

// FaultPresets returns the named chaos-schedule presets ("healthy",
// "crash", "crash-rejoin", "rolling", "stragglers", "flaky-fetch",
// "chaos").
func FaultPresets() []string { return fault.PresetNames() }

// FaultPreset instantiates a named preset for a cluster of the given
// node count and an application with the given executed-stage count.
func FaultPreset(name string, nodes, stages int) (*FaultSchedule, error) {
	return fault.Preset(name, nodes, stages)
}

// MainCluster returns the paper's 25-node main testbed (Table 4).
func MainCluster() ClusterConfig { return cluster.Main() }

// LRCCluster returns the 20-node Amazon EC2 m4.large equivalent used
// for the LRC comparison (Table 4).
func LRCCluster() ClusterConfig { return cluster.LRC() }

// MemTuneCluster returns the 6-node System G equivalent used for the
// MemTune comparison (Table 4).
func MemTuneCluster() ClusterConfig { return cluster.MemTune() }

// NewGraph creates an empty application DAG for the transformation
// API (Source, Map, ReduceByKey, Cache, Count, ...).
func NewGraph() *Graph { return dag.New() }

// Workloads returns the benchmark workload names (SparkBench and
// HiBench, Table 1 order).
func Workloads() []string { return workload.Names() }

// SparkBenchWorkloads returns the fourteen performance-evaluation
// workloads (Table 3 order).
func SparkBenchWorkloads() []string { return workload.SparkBenchNames() }

// BuildWorkload generates a benchmark workload's DAG.
func BuildWorkload(name string, p WorkloadParams) (*WorkloadSpec, error) {
	return workload.Build(name, p)
}

// Config selects what one Run simulates. Zero values mean: main
// cluster, the cluster's default cache size, full MRD in recurring
// mode.
type Config struct {
	// Workload is a benchmark name from Workloads(). Leave empty and
	// use RunGraph for a custom DAG.
	Workload string
	// Params tunes the workload generator (iterations, input size).
	Params WorkloadParams
	// Cluster is the simulated cluster; zero value means MainCluster.
	Cluster ClusterConfig
	// CachePerNode overrides the cluster's per-node storage pool.
	CachePerNode int64
	// Policy is one of Policies(). Empty means "MRD".
	Policy string
	// MRD tunes the MRD variants (eviction/prefetch toggles, metric,
	// threshold); ignored for other policies.
	MRD MRDOptions
	// AdHoc makes DAG-aware policies (MRD, LRC) learn the DAG one job
	// at a time instead of starting from a recurring profile.
	AdHoc bool
	// Fault is a full fault-injection schedule (crashes, stragglers,
	// lost/corrupt blocks, flaky fetches, replication). Build one
	// directly or via FaultPreset. Takes precedence over FailNode.
	Fault *FaultSchedule
	// FailNode injects a single worker failure before executed stage
	// FailAtStage when >= 1 (node index FailNode-1), exercising the
	// §4.4 fault-tolerance path. Shorthand for a one-crash Fault
	// schedule; kept for backward compatibility.
	FailNode    int
	FailAtStage int
}

// faultSchedule resolves the Config's fault configuration: an explicit
// schedule wins, then the legacy single-crash shorthand, else none.
func (cfg Config) faultSchedule() *FaultSchedule {
	if cfg.Fault != nil {
		return cfg.Fault
	}
	if cfg.FailNode >= 1 {
		return fault.Crash(cfg.FailNode-1, cfg.FailAtStage)
	}
	return nil
}

// Policies returns the available policy names.
func Policies() []string {
	names := make([]string, 0, len(policyBuilders))
	for name := range policyBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var policyBuilders = map[string]func(cfg Config, g *Graph) PolicyFactory{
	"LRU":        func(Config, *Graph) PolicyFactory { return policy.NewLRU() },
	"FIFO":       func(Config, *Graph) PolicyFactory { return policy.NewFIFO() },
	"LFU":        func(Config, *Graph) PolicyFactory { return policy.NewLFU() },
	"Hyperbolic": func(Config, *Graph) PolicyFactory { return policy.NewHyperbolic() },
	"GDS":        func(Config, *Graph) PolicyFactory { return policy.NewGDS() },
	"MIN":        func(_ Config, g *Graph) PolicyFactory { return policy.NewMIN(g) },
	"MemTune":    func(_ Config, g *Graph) PolicyFactory { return policy.NewMemTune(g) },
	"LRC": func(cfg Config, g *Graph) PolicyFactory {
		if cfg.AdHoc {
			return policy.NewLRCAdHoc()
		}
		return policy.NewLRC(g)
	},
	"MRD": buildMRD,
	"MRD-evict": func(cfg Config, g *Graph) PolicyFactory {
		cfg.MRD.DisablePrefetch = true
		return buildMRD(cfg, g)
	},
	"MRD-prefetch": func(cfg Config, g *Graph) PolicyFactory {
		cfg.MRD.DisableEviction = true
		return buildMRD(cfg, g)
	},
	"MRD-dynamic": func(cfg Config, g *Graph) PolicyFactory {
		cfg.MRD.DynamicThreshold = true
		return buildMRD(cfg, g)
	},
}

// buildMRD assembles the paper's policy: an AppProfiler in the
// configured mode feeding an MRDManager.
func buildMRD(cfg Config, g *Graph) PolicyFactory {
	var prof *core.AppProfiler
	if cfg.AdHoc {
		prof = core.NewAppProfiler()
	} else {
		prof = core.NewRecurringProfiler(refdist.FromGraph(g))
	}
	return core.NewManager(g, prof, cfg.MRD)
}

// NewPolicy builds a policy factory by name for the given DAG.
func NewPolicy(name string, cfg Config, g *Graph) (PolicyFactory, error) {
	if name == "" {
		name = "MRD"
	}
	b, ok := policyBuilders[name]
	if !ok {
		return nil, fmt.Errorf("mrdspark: unknown policy %q (have %v)", name, Policies())
	}
	return b(cfg, g), nil
}

// Run builds the configured benchmark workload and simulates it.
func Run(cfg Config) (Result, error) {
	if cfg.Workload == "" {
		return Result{}, fmt.Errorf("mrdspark: Config.Workload is empty (choose from %v, or use RunGraph)", Workloads())
	}
	spec, err := workload.Build(cfg.Workload, cfg.Params)
	if err != nil {
		return Result{}, err
	}
	return RunGraph(spec.Graph, spec.Name, cfg)
}

// RunGraph simulates an arbitrary application DAG under the
// configured cluster and policy.
func RunGraph(g *Graph, name string, cfg Config) (Result, error) {
	s, err := newGraphSim(g, name, cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}

// newGraphSim assembles a ready-to-run simulation of a DAG under the
// Config's cluster, policy and fault schedule.
func newGraphSim(g *Graph, name string, cfg Config) (*sim.Simulation, error) {
	cl := cfg.Cluster
	if cl.Nodes == 0 {
		cl = cluster.Main()
	}
	if cfg.CachePerNode > 0 {
		cl = cl.WithCache(cfg.CachePerNode)
	}
	factory, err := NewPolicy(cfg.Policy, cfg, g)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(g, cl, factory, name)
	if err != nil {
		return nil, err
	}
	if f := cfg.faultSchedule(); f != nil {
		if err := s.SetOptions(sim.Options{Fault: f}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// newConfiguredSim builds the Config's benchmark workload and
// assembles its simulation.
func newConfiguredSim(cfg Config) (*sim.Simulation, error) {
	if cfg.Workload == "" {
		return nil, fmt.Errorf("mrdspark: Config.Workload is empty (choose from %v)", Workloads())
	}
	spec, err := workload.Build(cfg.Workload, cfg.Params)
	if err != nil {
		return nil, err
	}
	return newGraphSim(spec.Graph, spec.Name, cfg)
}

// RunGraphWith simulates a DAG under a caller-provided policy factory
// — the hook for custom policies (see examples/custompolicy).
func RunGraphWith(g *Graph, name string, cl ClusterConfig, factory PolicyFactory) (Result, error) {
	return sim.Run(g, cl, factory, name)
}

// StageSpan is one executed stage's slice of a run's timeline.
type StageSpan = metrics.StageSpan

// RunDetailed is Run plus the per-stage execution timeline.
func RunDetailed(cfg Config) (Result, []StageSpan, error) {
	return RunTraced(cfg, nil)
}

// RunTraced is RunDetailed plus, when trace is non-nil, a JSON-lines
// event trace (every hit, promote, insert, evict, purge and prefetch
// with its simulated timestamp) written to trace.
func RunTraced(cfg Config, trace io.Writer) (Result, []StageSpan, error) {
	s, err := newConfiguredSim(cfg)
	if err != nil {
		return Result{}, nil, err
	}
	if trace != nil {
		s.EnableTrace()
	}
	run := s.Run()
	if trace != nil {
		if err := s.WriteTrace(trace); err != nil {
			return run, s.Timeline(), err
		}
	}
	return run, s.Timeline(), nil
}

// RunReport is a renderable run report (see internal/obs): per-stage
// and per-node aggregates, timeline lanes, histograms, and optional
// baseline runs for comparison. Render with WriteHTML.
type RunReport = obs.Report

// Observed is a completed instrumented run: the result plus the full
// event stream and its aggregates, exportable as a JSONL trace, a
// Prometheus text exposition, or an HTML report.
type Observed struct {
	Run      Result
	Timeline []StageSpan
	sim      *sim.Simulation
	agg      *obs.Aggregator
}

// RunObserved runs the configured benchmark workload with the
// observability layer attached: the event bus feeds both a recorder
// (for traces) and a streaming aggregator (for reports and metrics).
func RunObserved(cfg Config) (*Observed, error) {
	s, err := newConfiguredSim(cfg)
	if err != nil {
		return nil, err
	}
	s.EnableTrace()
	agg := s.Observe()
	run := s.Run()
	return &Observed{Run: run, Timeline: s.Timeline(), sim: s, agg: agg}, nil
}

// Report snapshots the run into a renderable report.
func (o *Observed) Report() *RunReport { return o.agg.Report(o.Run) }

// WriteHTML renders the self-contained HTML run report.
func (o *Observed) WriteHTML(w io.Writer) error { return o.Report().WriteHTML(w) }

// WriteTrace writes the run's full JSONL event trace.
func (o *Observed) WriteTrace(w io.Writer) error { return o.sim.WriteTrace(w) }

// WritePrometheus writes the aggregates in the Prometheus text
// exposition format.
func (o *Observed) WritePrometheus(w io.Writer) error { return obs.WritePrometheus(w, o.agg) }
