package mrdspark

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation (plus the DESIGN.md ablations), each
// regenerating the artifact end to end, and micro-benchmarks for the
// hot paths. Run everything with:
//
//	go test -bench=. -benchmem
//
// The rendered artifacts themselves come from cmd/experiments; these
// benchmarks measure the cost of regenerating them and keep every
// driver exercised by `go test -bench`.

import (
	"testing"

	"mrdspark/internal/block"
	"mrdspark/internal/cluster"
	"mrdspark/internal/core"
	"mrdspark/internal/dag"
	"mrdspark/internal/experiments"
	"mrdspark/internal/obs"
	"mrdspark/internal/policy"
	"mrdspark/internal/refdist"
	"mrdspark/internal/sim"
	"mrdspark/internal/workload"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 20 {
			b.Fatal("table 1 incomplete")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		if len(rows) != 14 {
			b.Fatal("table 3 incomplete")
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := experiments.Fig2("CC")
		if len(tr.Stages) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4(cluster.Main())
		if len(rows) != 14 {
			b.Fatal("fig 4 incomplete")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig5(); len(rows) != 14 {
			b.Fatal("fig 5 incomplete")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig6(); len(rows) != 14 {
			b.Fatal("fig 6 incomplete")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := experiments.Fig7(); len(res.Points) == 0 {
			b.Fatal("fig 7 empty")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig8(cluster.Main()); len(rows) != 2 {
			b.Fatal("fig 8 incomplete")
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig9(cluster.Main()); len(rows) != 2 {
			b.Fatal("fig 9 incomplete")
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig10(cluster.Main()); len(rows) == 0 {
			b.Fatal("fig 10 empty")
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	rows := experiments.Fig4(cluster.Main())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, tr := experiments.Fig11(rows)
		if len(pts) != 14 || tr.R2 < 0 {
			b.Fatal("fig 11 broken")
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	rows := experiments.Fig4(cluster.Main())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, tr := experiments.Fig12(rows)
		if len(pts) != 14 || tr.R2 < 0 {
			b.Fatal("fig 12 broken")
		}
	}
}

func BenchmarkAblationPurge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.AblationPurge(cluster.Main()); len(rows) == 0 {
			b.Fatal("ablation empty")
		}
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.AblationThreshold(cluster.Main()); len(rows) == 0 {
			b.Fatal("ablation empty")
		}
	}
}

func BenchmarkAblationMIN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.AblationMIN(cluster.Main()); len(rows) == 0 {
			b.Fatal("ablation empty")
		}
	}
}

func BenchmarkAblationDynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.AblationDynamicThreshold(cluster.Main()); len(rows) == 0 {
			b.Fatal("ablation empty")
		}
	}
}

func BenchmarkAblationTieBreak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.AblationTieBreak(cluster.Main()); len(rows) == 0 {
			b.Fatal("ablation empty")
		}
	}
}

func BenchmarkBaselineOblivious(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.BaselineOblivious(cluster.Main()); len(rows) == 0 {
			b.Fatal("comparison empty")
		}
	}
}

func BenchmarkStorageLevelStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.StorageLevelStudy(cluster.Main()); len(rows) == 0 {
			b.Fatal("study empty")
		}
	}
}

func BenchmarkFailureSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.FailureSweep(cluster.Main()); len(rows) == 0 {
			b.Fatal("sweep empty")
		}
	}
}

func BenchmarkSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Sensitivity(cluster.Main(), []string{"CC"}, []int64{20, 70, 280})
		if len(rows) == 0 {
			b.Fatal("sweep empty")
		}
	}
}

func BenchmarkExtensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Extensions(cluster.Main()); len(rows) != 3 {
			b.Fatal("extensions incomplete")
		}
	}
}

// --- micro-benchmarks for the hot paths ---

// BenchmarkSimulateSCC measures one full simulated run of the paper's
// best-case workload under full MRD.
func BenchmarkSimulateSCC(b *testing.B) {
	cfg := cluster.Main().WithCache(160 << 20)
	for i := 0; i < b.N; i++ {
		spec, _ := workload.Build("SCC", workload.Params{})
		mgr := core.NewManager(spec.Graph,
			core.NewRecurringProfiler(refdist.FromGraph(spec.Graph)), core.Options{})
		if _, err := sim.Run(spec.Graph, cfg, mgr, "SCC"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSCCLRU is the baseline-policy twin of the above.
func BenchmarkSimulateSCCLRU(b *testing.B) {
	cfg := cluster.Main().WithCache(160 << 20)
	for i := 0; i < b.N; i++ {
		spec, _ := workload.Build("SCC", workload.Params{})
		if _, err := sim.Run(spec.Graph, cfg, policy.NewLRU(), "SCC"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildLP measures DAG construction for the largest workload.
func BenchmarkBuildLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec, err := workload.Build("LP", workload.Params{})
		if err != nil || len(spec.Graph.Jobs) == 0 {
			b.Fatal("build failed")
		}
	}
}

// BenchmarkProfileFromGraph measures reference-distance extraction —
// the AppProfiler's parseDAG cost the paper's §4.4 claims is small.
func BenchmarkProfileFromGraph(b *testing.B) {
	spec, _ := workload.Build("SCC", workload.Params{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := refdist.FromGraph(spec.Graph)
		if len(p.RDDs()) == 0 {
			b.Fatal("empty profile")
		}
	}
}

// BenchmarkMRDTableRefresh measures the per-stage newReferenceDistance
// update over the biggest MRD_Table in the suite.
func BenchmarkMRDTableRefresh(b *testing.B) {
	spec, _ := workload.Build("SCC", workload.Params{})
	mgr := core.NewManager(spec.Graph,
		core.NewRecurringProfiler(refdist.FromGraph(spec.Graph)), core.Options{DisablePrefetch: true})
	stages := spec.Graph.ExecutedStages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := stages[i%len(stages)]
		mgr.OnStageStart(s.ID, s.FirstJob.ID)
	}
}

// BenchmarkVictimSelection measures per-eviction policy cost with a
// populated store.
func BenchmarkVictimSelection(b *testing.B) {
	for _, mk := range []struct {
		name string
		f    policy.Factory
	}{
		{"LRU", policy.NewLRU()},
		{"LFU", policy.NewLFU()},
	} {
		b.Run(mk.name, func(b *testing.B) {
			n := mk.f.NewNodePolicy(0)
			g := dag.New()
			r := g.Source("in", 512, 1<<20)
			for p := 0; p < 512; p++ {
				n.OnAdd(r.Block(p))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := n.Victim(func(block.ID) bool { return true }); !ok {
					b.Fatal("no victim")
				}
			}
		})
	}
}

// BenchmarkEngine measures raw event throughput of the DES core.
func BenchmarkEngine(b *testing.B) {
	e := sim.NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.After(1, tick)
		}
	}
	b.ResetTimer()
	e.After(1, tick)
	e.Run()
}

// BenchmarkObsEmitDisabled is the acceptance guard for the event bus:
// with no subscribers (the default — nothing called EnableTrace or
// Observe), Emit on the hot path must cost two compares and zero
// allocations. A regression here taxes every simulated cache access.
func BenchmarkObsEmitDisabled(b *testing.B) {
	bus := obs.New()
	ev := obs.BlockEv(obs.KindHit, 3, block.ID{RDD: 7, Partition: 9}, 4096).
		WithValue(12).WithVerdict("mrd")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Emit(ev)
	}
	if n := testing.AllocsPerRun(1000, func() { bus.Emit(ev) }); n != 0 {
		b.Fatalf("disabled Emit allocates %.1f per call", n)
	}
}

// BenchmarkSimulateSCCObserved is BenchmarkSimulateSCC with the full
// observability pipeline attached (recorder + streaming aggregator);
// the delta to the plain benchmark is the cost of observing a run.
func BenchmarkSimulateSCCObserved(b *testing.B) {
	cfg := cluster.Main().WithCache(160 << 20)
	for i := 0; i < b.N; i++ {
		spec, _ := workload.Build("SCC", workload.Params{})
		mgr := core.NewManager(spec.Graph,
			core.NewRecurringProfiler(refdist.FromGraph(spec.Graph)), core.Options{})
		s, err := sim.New(spec.Graph, cfg, mgr, "SCC")
		if err != nil {
			b.Fatal(err)
		}
		s.EnableTrace()
		agg := s.Observe()
		s.Run()
		if len(agg.StageStats()) == 0 {
			b.Fatal("no stages observed")
		}
	}
}
