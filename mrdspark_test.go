package mrdspark

import (
	"strings"
	"testing"

	"mrdspark/internal/block"
)

func TestRunEveryPolicyOnSmallWorkload(t *testing.T) {
	for _, p := range Policies() {
		p := p
		t.Run(p, func(t *testing.T) {
			run, err := Run(Config{
				Workload:     "SP",
				Policy:       p,
				CachePerNode: 64 << 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			if run.JCT <= 0 || run.Jobs == 0 {
				t.Errorf("degenerate run: %+v", run)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := Run(Config{Workload: "nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Run(Config{Workload: "SP", Policy: "nope"}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	run, err := Run(Config{Workload: "SP"})
	if err != nil {
		t.Fatal(err)
	}
	if run.Policy != "MRD" {
		t.Errorf("default policy = %q, want MRD", run.Policy)
	}
}

func TestPoliciesListed(t *testing.T) {
	names := Policies()
	want := map[string]bool{"LRU": true, "LRC": true, "MemTune": true, "MRD": true,
		"MRD-evict": true, "MRD-prefetch": true, "MRD-dynamic": true, "MIN": true,
		"FIFO": true, "LFU": true, "Hyperbolic": true, "GDS": true}
	if len(names) != len(want) {
		t.Errorf("policies = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected policy %q", n)
		}
	}
}

func TestWorkloadsListed(t *testing.T) {
	if len(Workloads()) != 23 || len(SparkBenchWorkloads()) != 14 {
		t.Errorf("workloads = %d / %d", len(Workloads()), len(SparkBenchWorkloads()))
	}
}

func TestRunGraphCustomDAG(t *testing.T) {
	g := NewGraph()
	data := g.Source("in", 4, 1<<20).Map("parse").Persist(block.MemoryAndDisk)
	g.Count(data)
	g.Count(data.Map("use"))
	run, err := RunGraph(g, "custom", Config{CachePerNode: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if run.Workload != "custom" || run.Jobs != 2 {
		t.Errorf("custom run = %+v", run)
	}
	if run.Hits == 0 {
		t.Error("cached reuse produced no hits")
	}
}

func TestFailureInjectionThroughFacade(t *testing.T) {
	run, err := Run(Config{
		Workload:     "SP",
		CachePerNode: 64 << 20,
		FailNode:     1,
		FailAtStage:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Jobs == 0 {
		t.Error("run did not complete after failure injection")
	}
}

func TestAdHocVsRecurringFacade(t *testing.T) {
	adhoc, err := Run(Config{Workload: "KM", AdHoc: true, CachePerNode: 180 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Run(Config{Workload: "KM", CachePerNode: 180 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if rec.HitRatio() < adhoc.HitRatio()-0.01 {
		t.Errorf("recurring hit %.2f below ad-hoc %.2f", rec.HitRatio(), adhoc.HitRatio())
	}
}

func TestClusterPresets(t *testing.T) {
	if MainCluster().Nodes != 25 || LRCCluster().Nodes != 20 || MemTuneCluster().Nodes != 6 {
		t.Error("presets do not match Table 4")
	}
}

func TestRunDetailedTimeline(t *testing.T) {
	run, spans, err := RunDetailed(Config{Workload: "SP", CachePerNode: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != run.StagesExecuted {
		t.Fatalf("spans = %d, want %d", len(spans), run.StagesExecuted)
	}
	if spans[len(spans)-1].End != run.JCT {
		t.Error("timeline does not end at the JCT")
	}
	if _, _, err := RunDetailed(Config{}); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestNewObliviousPoliciesRun(t *testing.T) {
	for _, p := range []string{"Hyperbolic", "GDS", "MRD-dynamic"} {
		run, err := Run(Config{Workload: "PR", Policy: p, CachePerNode: 96 << 20})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if run.JCT <= 0 {
			t.Errorf("%s: degenerate run", p)
		}
	}
}

func TestRunTracedWritesJSONL(t *testing.T) {
	var buf strings.Builder
	run, spans, err := RunTraced(Config{Workload: "SP", CachePerNode: 64 << 20}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if run.JCT <= 0 || len(spans) == 0 {
		t.Fatal("degenerate traced run")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < run.StagesExecuted {
		t.Errorf("trace lines = %d, want at least one per stage (%d)", len(lines), run.StagesExecuted)
	}
	for _, ln := range lines[:3] {
		if !strings.HasPrefix(ln, "{") || !strings.Contains(ln, "\"kind\"") {
			t.Errorf("trace line not JSON: %q", ln)
		}
	}
}

func TestMRDOptionsPassThrough(t *testing.T) {
	// Job-distance metric and tie-break options flow through the
	// facade; the runs differ from the default configuration.
	base, err := Run(Config{Workload: "LP", CachePerNode: 200 << 20})
	if err != nil {
		t.Fatal(err)
	}
	jobMetric, err := Run(Config{
		Workload: "LP", CachePerNode: 200 << 20,
		MRD: MRDOptions{Metric: 1 /* core.JobDistance */},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base == jobMetric {
		t.Error("job-distance option had no effect through the facade")
	}
	noPurge, err := Run(Config{
		Workload: "LP", CachePerNode: 200 << 20,
		MRD: MRDOptions{DisablePurge: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if noPurge.PurgedBlocks != 0 {
		t.Errorf("DisablePurge ignored: %d purged", noPurge.PurgedBlocks)
	}
	if base.PurgedBlocks == 0 {
		t.Error("default run purged nothing on LP")
	}
}

func TestExtensionWorkloadsRunUnderMRD(t *testing.T) {
	for _, name := range []string{"EXT-BFS", "EXT-GBT", "EXT-StarJoin"} {
		lru, err := Run(Config{Workload: name, Policy: "LRU", CachePerNode: 128 << 20})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mrd, err := Run(Config{Workload: name, Policy: "MRD", CachePerNode: 128 << 20})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mrd.JCT <= 0 || lru.JCT <= 0 {
			t.Errorf("%s: degenerate runs", name)
		}
		// MRD should never be dramatically worse on these shapes.
		if float64(mrd.JCT) > 1.15*float64(lru.JCT) {
			t.Errorf("%s: MRD %.2fx LRU", name, float64(mrd.JCT)/float64(lru.JCT))
		}
	}
}
